// Package baselines implements every comparison method in the paper's
// evaluation (§V-A): FedAvg(-FT), SCAFFOLD(-FT), LG-FedAvg, FedPer, FedRep,
// FedBABU, PerFedAvg, APFL, Ditto, FedEMA, the local-only Script baselines,
// and — via internal/core — the uncalibrated pFL-SSL family. Each method is
// packaged as an fl.Method (Trainer + Aggregator + Personalizer).
package baselines

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"calibre/internal/data"
	"calibre/internal/model"
	"calibre/internal/param"
	"calibre/internal/partition"
	"calibre/internal/ssl"
)

// Config carries the shared settings for all baselines.
type Config struct {
	Arch       ssl.Arch
	NumClasses int
	Train      model.SupTrainConfig
	Head       model.HeadConfig

	// DittoLambda is Ditto's proximal strength (default 0.5).
	DittoLambda float64
	// APFLAlpha is APFL's personal/global mixture weight (default 0.5).
	APFLAlpha float64
	// EMAMomentum is FedEMA's client-side merge momentum scale (default
	// handled in fedema.go).
	EMAMomentum float64
	// ScriptEpochs is the local-only training budget: Script-Fair uses
	// Head.Epochs, Script-Convergent uses ScriptEpochs (default 80).
	ScriptEpochs int
	// UseUnlabeled lets SSL-based baselines (FedEMA) consume unlabeled
	// pools.
	UseUnlabeled bool
	// Augment is the SSL augmentation pipeline (style-aware when the
	// environment provides generator style directions).
	Augment data.Augmenter
	// WarmupRounds overrides Calibre's regularizer warm-up when positive
	// (the experiment harness scales it with the round budget so short
	// runs still exercise calibration).
	WarmupRounds int
}

// DefaultConfig returns baseline settings aligned with the paper.
func DefaultConfig(arch ssl.Arch, numClasses int) Config {
	return Config{
		Arch:         arch,
		NumClasses:   numClasses,
		Train:        model.DefaultSupTrainConfig(),
		Head:         model.DefaultHeadConfig(),
		DittoLambda:  0.5,
		APFLAlpha:    0.5,
		ScriptEpochs: 80,
		UseUnlabeled: true,
		Augment:      data.DefaultAugmenter(),
	}
}

// supBase manages per-client supervised models with a stable parameter
// layout. It underlies every supervised baseline.
type supBase struct {
	cfg Config

	mu     sync.Mutex
	states map[int]*model.SupModel
}

func newSupBase(cfg Config) *supBase {
	return &supBase{cfg: cfg, states: make(map[int]*model.SupModel)}
}

// state returns the client's persistent model, creating it on first use.
// The boolean reports whether the client was already known (false = novel).
//
// Exactly one draw is consumed from rng in BOTH branches (it seeds the
// construction RNG when the model is actually built), so the caller's
// downstream RNG stream never depends on whether this process has seen
// the client before. That invariance is what lets a checkpoint-resumed
// process — whose caches start cold — train bit-identically to one that
// was never restarted.
func (b *supBase) state(rng *rand.Rand, id int) (*model.SupModel, bool) {
	initSeed := rng.Int63()
	b.mu.Lock()
	defer b.mu.Unlock()
	if m, ok := b.states[id]; ok {
		return m, true
	}
	m := model.NewSupModel(rand.New(rand.NewSource(initSeed)), b.cfg.Arch, b.cfg.NumClasses)
	b.states[id] = m
	return m, false
}

// peek returns the client's model without creating one.
func (b *supBase) peek(id int) (*model.SupModel, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	m, ok := b.states[id]
	return m, ok
}

func (b *supBase) newModel(rng *rand.Rand) *model.SupModel {
	return model.NewSupModel(rng, b.cfg.Arch, b.cfg.NumClasses)
}

// initGlobal builds the initial flattened global vector.
func (b *supBase) initGlobal(rng *rand.Rand) (param.Vector, error) {
	return flatten(b.newModel(rng)), nil
}

func flatten(m *model.SupModel) []float64 {
	out := make([]float64, 0)
	for _, p := range m.Params() {
		out = append(out, p.Value.Data()...)
	}
	return out
}

func load(m *model.SupModel, vec []float64) error {
	off := 0
	for _, p := range m.Params() {
		d := p.Value.Data()
		if off+len(d) > len(vec) {
			return fmt.Errorf("baselines: vector too short: %d < %d", len(vec), off+len(d))
		}
		copy(d, vec[off:off+len(d)])
		off += len(d)
	}
	if off != len(vec) {
		return fmt.Errorf("baselines: vector length %d, model needs %d", len(vec), off)
	}
	return nil
}

// loadMasked copies only the vector positions where mask is true.
func loadMasked(m *model.SupModel, vec []float64, mask []bool) error {
	off := 0
	for _, p := range m.Params() {
		d := p.Value.Data()
		if off+len(d) > len(vec) {
			return fmt.Errorf("baselines: vector too short: %d < %d", len(vec), off+len(d))
		}
		for i := range d {
			if mask[off+i] {
				d[i] = vec[off+i]
			}
		}
		off += len(d)
	}
	return nil
}

// fineTuneHead trains only the model's head on the client's local training
// set using the personalization budget, then returns local test accuracy.
func (b *supBase) fineTuneHead(rng *rand.Rand, m *model.SupModel, client *partition.Client) (float64, error) {
	cfg := model.SupTrainConfig{
		Epochs:        b.cfg.Head.Epochs,
		BatchSize:     b.cfg.Head.BatchSize,
		LR:            b.cfg.Head.LR,
		Momentum:      b.cfg.Head.Momentum,
		ClipNorm:      b.cfg.Train.ClipNorm,
		FreezeEncoder: true,
	}
	if _, err := model.TrainSupervised(rng, m, client.Train, cfg); err != nil {
		return 0, fmt.Errorf("baselines: head fine-tune: %w", err)
	}
	return m.Accuracy(client.Test), nil
}

// probeAccuracy runs the linear-probe personalization on the model's frozen
// encoder (train a head from scratch), as FedBABU and the SSL methods do.
func (b *supBase) probeAccuracy(rng *rand.Rand, m *model.SupModel, client *partition.Client) (float64, error) {
	return model.LinearProbeAccuracy(rng, m.EncodeValue, client.Train, client.Test, b.cfg.NumClasses, b.cfg.Head)
}

// ensureCtx is a small helper turning ctx cancellation into an error at the
// head of Train/Personalize implementations.
func ensureCtx(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("baselines: %w", err)
	}
	return nil
}
