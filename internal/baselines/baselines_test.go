package baselines

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"calibre/internal/data"
	"calibre/internal/fl"
	"calibre/internal/model"
	"calibre/internal/nn"
	"calibre/internal/partition"
	"calibre/internal/ssl"
)

func testArch() ssl.Arch {
	return ssl.Arch{InputDim: 16, HiddenDim: 24, FeatDim: 12, ProjDim: 8}
}

func testCfg() Config {
	cfg := DefaultConfig(testArch(), 10)
	cfg.Train.Epochs = 1
	cfg.Train.BatchSize = 16
	cfg.Head.Epochs = 3
	cfg.ScriptEpochs = 5
	return cfg
}

func testClients(t *testing.T, n, perClient int) []*partition.Client {
	t.Helper()
	spec := data.CIFAR10Spec()
	spec.Dim = 16
	g, err := data.NewGenerator(spec, 3)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	rng := rand.New(rand.NewSource(4))
	ds := g.GenerateLabeled(rng, 10*n)
	parts, err := partition.QuantityNonIID(rng, ds, n, 2, perClient)
	if err != nil {
		t.Fatalf("QuantityNonIID: %v", err)
	}
	unl := g.GenerateUnlabeled(rng, n*8)
	return partition.BuildClients(rng, ds, parts, unl)
}

func TestRegistryCoversPaperMethods(t *testing.T) {
	names := MethodNames()
	want := []string{
		"apfl", "calibre-simclr", "ditto", "fedavg", "fedavg-ft", "fedbabu",
		"fedema", "fedper", "fedrep", "lg-fedavg", "perfedavg", "pfl-byol",
		"pfl-simclr", "scaffold", "scaffold-ft", "script-convergent", "script-fair",
	}
	have := make(map[string]bool, len(names))
	for _, n := range names {
		have[n] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Fatalf("registry missing %q; have %v", w, names)
		}
	}
	if _, err := Build("nope", testCfg(), 4); err == nil {
		t.Fatal("unknown method should error")
	}
}

// Every registered method must complete a miniature federation + full
// personalization without errors or non-finite values.
func TestEveryMethodEndToEnd(t *testing.T) {
	clients := testClients(t, 4, 24)
	for _, name := range MethodNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			m, err := Build(name, testCfg(), len(clients))
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			sim, err := fl.NewSimulator(fl.SimConfig{Rounds: 2, ClientsPerRound: 2, Seed: 5, Parallelism: 1}, m, clients)
			if err != nil {
				t.Fatalf("NewSimulator: %v", err)
			}
			global, hist, err := sim.Run(context.Background())
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if len(hist) != 2 {
				t.Fatalf("history = %d", len(hist))
			}
			for _, v := range global {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatal("non-finite global parameter")
				}
			}
			accs, err := fl.PersonalizeAll(context.Background(), 5, m, clients, global, 2)
			if err != nil {
				t.Fatalf("PersonalizeAll: %v", err)
			}
			for i, a := range accs {
				if a < 0 || a > 1 || math.IsNaN(a) {
					t.Fatalf("client %d accuracy = %v", i, a)
				}
			}
		})
	}
}

func TestFedAvgFTImprovesOverFedAvgOnSkewedClients(t *testing.T) {
	// Under 2-class non-IID clients, fine-tuning the head on local data
	// should beat evaluating the raw global model.
	clients := testClients(t, 6, 40)
	run := func(name string) float64 {
		m, err := Build(name, testCfg(), len(clients))
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		sim, err := fl.NewSimulator(fl.SimConfig{Rounds: 4, ClientsPerRound: 3, Seed: 7}, m, clients)
		if err != nil {
			t.Fatalf("NewSimulator: %v", err)
		}
		global, _, err := sim.Run(context.Background())
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		accs, err := fl.PersonalizeAll(context.Background(), 7, m, clients, global, 2)
		if err != nil {
			t.Fatalf("PersonalizeAll: %v", err)
		}
		var mean float64
		for _, a := range accs {
			mean += a
		}
		return mean / float64(len(accs))
	}
	plain := run("fedavg")
	ft := run("fedavg-ft")
	if ft <= plain {
		t.Fatalf("FedAvg-FT (%v) should beat FedAvg (%v) under label skew", ft, plain)
	}
}

func TestScriptTrainerIsIdentity(t *testing.T) {
	clients := testClients(t, 2, 16)
	m, err := Build("script-fair", testCfg(), 2)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	rng := rand.New(rand.NewSource(8))
	global, err := m.InitGlobal(rng)
	if err != nil {
		t.Fatalf("InitGlobal: %v", err)
	}
	u, err := m.Trainer.Train(context.Background(), rng, clients[0], global, 0)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	for i := range global {
		if u.Params[i] != global[i] {
			t.Fatal("script trainer must not modify the global vector")
		}
	}
}

func TestScaffoldControlVariatesEvolve(t *testing.T) {
	clients := testClients(t, 3, 24)
	cfg := testCfg()
	method := NewScaffold(cfg, len(clients))
	rng := rand.New(rand.NewSource(9))
	global, err := method.InitGlobal(rng)
	if err != nil {
		t.Fatalf("InitGlobal: %v", err)
	}
	s := method.Trainer.(*scaffold)
	u, err := s.Train(context.Background(), rng, clients[0], global, 0)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if u.ControlDelta == nil {
		t.Fatal("scaffold update must carry a control delta")
	}
	var norm float64
	for _, v := range u.ControlDelta {
		norm += v * v
	}
	if norm == 0 {
		t.Fatal("control delta should be non-zero after training")
	}
	// Aggregating moves the server control.
	if _, err := method.Aggregator.Aggregate(global, []*fl.Update{u}); err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	ctl := s.agg.Control(len(global))
	var cnorm float64
	for _, v := range ctl {
		cnorm += v * v
	}
	if cnorm == 0 {
		t.Fatal("server control should move after aggregation")
	}
}

func TestPartialMethodsKeepPrivateHalfLocal(t *testing.T) {
	clients := testClients(t, 2, 24)
	cfg := testCfg()
	method := NewFedPer(cfg)
	rng := rand.New(rand.NewSource(10))
	global, err := method.InitGlobal(rng)
	if err != nil {
		t.Fatalf("InitGlobal: %v", err)
	}
	p := method.Trainer.(*partial)
	u1, err := p.Train(context.Background(), rng, clients[0], global, 0)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	// Aggregate with the encoder mask: head positions must stay at the
	// previous global values.
	newGlobal, err := method.Aggregator.Aggregate(global, []*fl.Update{u1})
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	ref := model.NewSupModel(rand.New(rand.NewSource(0)), cfg.Arch, cfg.NumClasses)
	headMask := ref.HeadMask()
	for i, isHead := range headMask {
		if isHead && newGlobal[i] != global[i] {
			t.Fatal("FedPer aggregation must not move head positions")
		}
	}
	changed := false
	for i, isHead := range headMask {
		if !isHead && newGlobal[i] != global[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("FedPer aggregation should move encoder positions")
	}
}

func TestLGFedAvgAggregatesHeadOnly(t *testing.T) {
	clients := testClients(t, 2, 24)
	cfg := testCfg()
	method := NewLGFedAvg(cfg)
	rng := rand.New(rand.NewSource(11))
	global, err := method.InitGlobal(rng)
	if err != nil {
		t.Fatalf("InitGlobal: %v", err)
	}
	u, err := method.Trainer.Train(context.Background(), rng, clients[0], global, 0)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	newGlobal, err := method.Aggregator.Aggregate(global, []*fl.Update{u})
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	ref := model.NewSupModel(rand.New(rand.NewSource(0)), cfg.Arch, cfg.NumClasses)
	for i, isEnc := range ref.EncoderMask() {
		if isEnc && newGlobal[i] != global[i] {
			t.Fatal("LG-FedAvg aggregation must not move encoder positions")
		}
	}
}

func TestFedBABUHeadFrozenDuringTraining(t *testing.T) {
	clients := testClients(t, 2, 24)
	cfg := testCfg()
	method := NewFedBABU(cfg)
	rng := rand.New(rand.NewSource(12))
	global, err := method.InitGlobal(rng)
	if err != nil {
		t.Fatalf("InitGlobal: %v", err)
	}
	u, err := method.Trainer.Train(context.Background(), rng, clients[0], global, 0)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	ref := model.NewSupModel(rand.New(rand.NewSource(0)), cfg.Arch, cfg.NumClasses)
	for i, isEnc := range ref.EncoderMask() {
		if !isEnc && u.Params[i] != global[i] {
			t.Fatal("FedBABU must not train the head")
		}
	}
}

func TestDittoPersonalModelsPersist(t *testing.T) {
	clients := testClients(t, 2, 24)
	cfg := testCfg()
	method := NewDitto(cfg)
	d := method.Trainer.(*ditto)
	rng := rand.New(rand.NewSource(13))
	global, err := method.InitGlobal(rng)
	if err != nil {
		t.Fatalf("InitGlobal: %v", err)
	}
	if _, err := d.Train(context.Background(), rng, clients[0], global, 0); err != nil {
		t.Fatalf("Train: %v", err)
	}
	d.mu.Lock()
	_, ok := d.personal[clients[0].ID]
	d.mu.Unlock()
	if !ok {
		t.Fatal("ditto must persist the personal model")
	}
	// Personal model should differ from the global model (it trained with
	// a proximal pull, not a copy).
	d.mu.Lock()
	v := append([]float64(nil), d.personal[clients[0].ID]...)
	d.mu.Unlock()
	same := true
	for i := range v {
		if v[i] != global[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("personal model should move away from global")
	}
}

func TestAPFLMixtureUsed(t *testing.T) {
	clients := testClients(t, 2, 24)
	cfg := testCfg()
	cfg.APFLAlpha = 0.5
	method := NewAPFL(cfg)
	a := method.Trainer.(*apfl)
	rng := rand.New(rand.NewSource(14))
	global, err := method.InitGlobal(rng)
	if err != nil {
		t.Fatalf("InitGlobal: %v", err)
	}
	if _, err := a.Train(context.Background(), rng, clients[0], global, 0); err != nil {
		t.Fatalf("Train: %v", err)
	}
	a.mu.Lock()
	_, ok := a.personal[clients[0].ID]
	a.mu.Unlock()
	if !ok {
		t.Fatal("apfl must persist the personal branch")
	}
	// Out-of-range alpha falls back to 0.5.
	bad := testCfg()
	bad.APFLAlpha = 7
	m2 := NewAPFL(bad)
	if m2.Trainer.(*apfl).alpha != 0.5 {
		t.Fatal("alpha out of range should default to 0.5")
	}
}

func TestFedEMAMergesDivergenceAware(t *testing.T) {
	clients := testClients(t, 2, 24)
	cfg := testCfg()
	method := NewFedEMA(cfg)
	f := method.Trainer.(*fedEMA)
	rng := rand.New(rand.NewSource(15))
	global, err := method.InitGlobal(rng)
	if err != nil {
		t.Fatalf("InitGlobal: %v", err)
	}
	// Round 0: client adopts global.
	if _, err := f.Train(context.Background(), rng, clients[0], global, 0); err != nil {
		t.Fatalf("Train r0: %v", err)
	}
	st := f.states[clients[0].ID]
	localAfterR0 := nn.Flatten(st)
	// Round 1 with a very different global: the merged start point must lie
	// strictly between local and the new global.
	shifted := make([]float64, len(global))
	for i := range shifted {
		shifted[i] = localAfterR0[i] + 1
	}
	u, err := f.Train(context.Background(), rng, clients[0], shifted, 1)
	if err != nil {
		t.Fatalf("Train r1: %v", err)
	}
	if u.NumSamples <= clients[0].Train.Len() {
		t.Fatal("FedEMA should train on the unlabeled pool too")
	}
}

func TestScriptConvergentTrainsLongerThanFair(t *testing.T) {
	cfg := testCfg()
	fair := NewScriptFair(cfg).Trainer.(*script)
	conv := NewScriptConvergent(cfg).Trainer.(*script)
	if conv.epochs <= fair.epochs {
		t.Fatalf("convergent epochs %d should exceed fair %d", conv.epochs, fair.epochs)
	}
	zero := cfg
	zero.ScriptEpochs = 0
	if NewScriptConvergent(zero).Trainer.(*script).epochs != 80 {
		t.Fatal("ScriptEpochs=0 should default to 80")
	}
}

func TestNovelClientPersonalization(t *testing.T) {
	// Clients never seen during training must still personalize for the
	// stateful methods.
	clients := testClients(t, 4, 24)
	trainClients := clients[:2]
	novel := clients[2:]
	for _, name := range []string{"fedper", "fedrep", "lg-fedavg", "apfl", "ditto", "fedema"} {
		name := name
		t.Run(name, func(t *testing.T) {
			m, err := Build(name, testCfg(), len(clients))
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			sim, err := fl.NewSimulator(fl.SimConfig{Rounds: 2, ClientsPerRound: 2, Seed: 16}, m, trainClients)
			if err != nil {
				t.Fatalf("NewSimulator: %v", err)
			}
			global, _, err := sim.Run(context.Background())
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			accs, err := fl.PersonalizeAll(context.Background(), 16, m, novel, global, 1)
			if err != nil {
				t.Fatalf("PersonalizeAll on novel clients: %v", err)
			}
			for _, a := range accs {
				if a < 0 || a > 1 || math.IsNaN(a) {
					t.Fatalf("novel accuracy = %v", a)
				}
			}
		})
	}
}

// TestRegistryResumeClassification pins every registered method's
// statefulness declaration: methods that accumulate cross-round state
// beyond the global vector (merged local models, private parameter
// halves, control variates, personal vectors) must report as
// non-resumable so checkpoint resume refuses them instead of silently
// diverging. Adding a method to the registry forces a classification
// decision here.
func TestRegistryResumeClassification(t *testing.T) {
	stateful := map[string]bool{
		"fedema":      true, // local model EMA-merged, not overwritten
		"fedper":      true, // private head persists in memory
		"fedrep":      true,
		"fedbabu":     true,
		"lg-fedavg":   true, // private encoder persists in memory
		"scaffold":    true, // client + server control variates
		"scaffold-ft": true,
		"apfl":        true, // personal vectors read at personalization
		"ditto":       true,
		// SSL momentum flavors: EMA target network (byol), momentum key
		// encoder + queue (mocov2) — method-local, never federated.
		"pfl-byol":       true,
		"calibre-byol":   true,
		"pfl-mocov2":     true,
		"calibre-mocov2": true,
	}
	cfg := testCfg()
	for name, build := range Registry() {
		m, err := build(cfg, 8)
		if err != nil {
			t.Fatalf("build %s: %v", name, err)
		}
		if got, want := !fl.Resumable(m), stateful[name]; got != want {
			t.Errorf("%s: carries round state = %v, want %v", name, got, want)
		}
	}
}
