package model

import (
	"fmt"
	"math/rand"

	"calibre/internal/data"
	"calibre/internal/nn"
	"calibre/internal/tensor"
)

// HeadConfig controls linear-probe training in the personalization stage.
// The paper's setting: 10 epochs of SGD with learning rate 0.05, batch 32.
type HeadConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	Momentum  float64
}

// DefaultHeadConfig returns the paper's personalization hyperparameters.
func DefaultHeadConfig() HeadConfig {
	return HeadConfig{Epochs: 10, BatchSize: 32, LR: 0.05, Momentum: 0}
}

// TrainLinearHead fits a linear classifier on frozen features. feats is
// (n×d), labels are class indices. This is the personalized model ϕ of the
// paper: deliberately lightweight.
func TrainLinearHead(rng *rand.Rand, feats *tensor.Tensor, labels []int, numClasses int, cfg HeadConfig) (*nn.Linear, error) {
	n := feats.Rows()
	if n == 0 {
		return nil, fmt.Errorf("model: no samples to train head on")
	}
	if len(labels) != n {
		return nil, fmt.Errorf("model: %d labels for %d samples", len(labels), n)
	}
	if cfg.Epochs < 1 || cfg.BatchSize < 1 {
		return nil, fmt.Errorf("model: bad head config %+v", cfg)
	}
	head := nn.NewLinear(rng, feats.Cols(), numClasses, "probe")
	opt := nn.NewSGD(head, cfg.LR, cfg.Momentum, 0)
	stepsPerEpoch := (n + cfg.BatchSize - 1) / cfg.BatchSize
	perm := rng.Perm(n)
	cur := 0
	nextBatch := func() []int {
		if cur >= n {
			perm = rng.Perm(n)
			cur = 0
		}
		end := cur + cfg.BatchSize
		if end > n {
			end = n
		}
		b := perm[cur:end]
		cur = end
		return b
	}
	for e := 0; e < cfg.Epochs; e++ {
		for s := 0; s < stepsPerEpoch; s++ {
			idx := nextBatch()
			x := tensor.New(len(idx), feats.Cols())
			y := make([]int, len(idx))
			for i, j := range idx {
				x.SetRow(i, feats.Row(j))
				y[i] = labels[j]
			}
			loss := nn.CrossEntropy(head.Forward(nn.Input(x)), y)
			opt.ZeroGrad()
			if err := nn.Backward(loss); err != nil {
				return nil, fmt.Errorf("model: head backward: %w", err)
			}
			opt.Step()
		}
	}
	return head, nil
}

// HeadAccuracy evaluates a linear head on frozen features.
func HeadAccuracy(head *nn.Linear, feats *tensor.Tensor, labels []int) float64 {
	if feats.Rows() == 0 {
		return 0
	}
	return nn.Accuracy(head.Forward(nn.Input(feats)).Value, labels)
}

// FeatureFn maps a raw batch to representation space; personalizers use it
// to abstract over how the encoder is reconstructed from the global vector.
type FeatureFn func(x *tensor.Tensor) *tensor.Tensor

// LinearProbeAccuracy runs the full personalization stage for one client:
// extract features for the local train and test sets with features, train a
// linear head on the train features, and return the test accuracy.
func LinearProbeAccuracy(rng *rand.Rand, features FeatureFn, train, test *data.Dataset, numClasses int, cfg HeadConfig) (float64, error) {
	if train.Len() == 0 || test.Len() == 0 {
		return 0, fmt.Errorf("model: client needs both train (%d) and test (%d) samples", train.Len(), test.Len())
	}
	trainFeats := features(data.Batch(train.X))
	head, err := TrainLinearHead(rng, trainFeats, train.Y, numClasses, cfg)
	if err != nil {
		return 0, err
	}
	testFeats := features(data.Batch(test.X))
	return HeadAccuracy(head, testFeats, test.Y), nil
}
