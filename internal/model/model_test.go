package model

import (
	"math/rand"
	"testing"

	"calibre/internal/data"
	"calibre/internal/nn"
	"calibre/internal/ssl"
	"calibre/internal/tensor"
)

func testArch() ssl.Arch {
	return ssl.Arch{InputDim: 16, HiddenDim: 24, FeatDim: 12, ProjDim: 8}
}

func testDataset(t *testing.T, perClass int) *data.Dataset {
	t.Helper()
	spec := data.CIFAR10Spec()
	spec.Dim = 16
	g, err := data.NewGenerator(spec, 5)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	return g.GenerateLabeled(rand.New(rand.NewSource(1)), perClass)
}

func TestSupModelShapesAndMasks(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewSupModel(rng, testArch(), 10)
	total := nn.ParamCount(m)
	enc := m.EncoderParamCount()
	if enc <= 0 || enc >= total {
		t.Fatalf("encoder boundary = %d of %d", enc, total)
	}
	em, hm := m.EncoderMask(), m.HeadMask()
	if len(em) != total || len(hm) != total {
		t.Fatal("mask lengths")
	}
	for i := range em {
		if em[i] == hm[i] {
			t.Fatal("masks must be complements")
		}
		if em[i] != (i < enc) {
			t.Fatal("encoder mask must cover the prefix")
		}
	}
	x := tensor.RandN(rng, 1, 4, 16)
	if got := m.Forward(x).Value; got.Rows() != 4 || got.Cols() != 10 {
		t.Fatalf("logits shape = %v", got.Shape())
	}
}

func TestTrainSupervisedLearns(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ds := testDataset(t, 30)
	m := NewSupModel(rng, testArch(), 10)
	before := m.Accuracy(ds)
	cfg := DefaultSupTrainConfig()
	cfg.Epochs = 12
	loss, err := TrainSupervised(rng, m, ds, cfg)
	if err != nil {
		t.Fatalf("TrainSupervised: %v", err)
	}
	after := m.Accuracy(ds)
	if after <= before+0.2 {
		t.Fatalf("training should improve accuracy: %v -> %v (loss %v)", before, after, loss)
	}
}

func TestTrainSupervisedFreezeEncoder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := testDataset(t, 10)
	m := NewSupModel(rng, testArch(), 10)
	encBefore := nn.Flatten(m.Encoder)
	headBefore := nn.Flatten(m.Head)
	cfg := DefaultSupTrainConfig()
	cfg.Epochs = 2
	cfg.FreezeEncoder = true
	if _, err := TrainSupervised(rng, m, ds, cfg); err != nil {
		t.Fatalf("TrainSupervised: %v", err)
	}
	encAfter := nn.Flatten(m.Encoder)
	for i := range encBefore {
		if encBefore[i] != encAfter[i] {
			t.Fatal("frozen encoder must not move")
		}
	}
	headAfter := nn.Flatten(m.Head)
	moved := false
	for i := range headBefore {
		if headBefore[i] != headAfter[i] {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("head should move")
	}
}

func TestTrainSupervisedFreezeHead(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ds := testDataset(t, 10)
	m := NewSupModel(rng, testArch(), 10)
	headBefore := nn.Flatten(m.Head)
	cfg := DefaultSupTrainConfig()
	cfg.Epochs = 1
	cfg.FreezeHead = true
	if _, err := TrainSupervised(rng, m, ds, cfg); err != nil {
		t.Fatalf("TrainSupervised: %v", err)
	}
	headAfter := nn.Flatten(m.Head)
	for i := range headBefore {
		if headBefore[i] != headAfter[i] {
			t.Fatal("frozen head must not move")
		}
	}
	cfg.FreezeEncoder = true
	if _, err := TrainSupervised(rng, m, ds, cfg); err == nil {
		t.Fatal("freezing everything should error")
	}
}

func TestTrainSupervisedProximalPullsTowardTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds := testDataset(t, 10)
	// Strong proximal term keeps weights near the target compared to an
	// unconstrained run.
	target := make([]float64, nn.ParamCount(NewSupModel(rand.New(rand.NewSource(6)), testArch(), 10)))
	run := func(mu float64) float64 {
		m := NewSupModel(rand.New(rand.NewSource(7)), testArch(), 10)
		cfg := DefaultSupTrainConfig()
		cfg.Epochs = 4
		cfg.ProxMu = mu
		cfg.ProxTarget = target
		if _, err := TrainSupervised(rng, m, ds, cfg); err != nil {
			t.Fatalf("TrainSupervised: %v", err)
		}
		return nn.VecNorm2(nn.VecSub(nn.Flatten(m), target))
	}
	free := run(0)
	constrained := run(5)
	if constrained >= free {
		t.Fatalf("proximal term should pull toward target: %v vs %v", constrained, free)
	}
}

func TestTrainSupervisedGradCorrectionShiftsResult(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ds := testDataset(t, 5)
	run := func(correct bool) []float64 {
		m := NewSupModel(rand.New(rand.NewSource(9)), testArch(), 10)
		cfg := DefaultSupTrainConfig()
		cfg.Epochs = 1
		cfg.Momentum = 0
		if correct {
			gc := make([]float64, nn.ParamCount(m))
			for i := range gc {
				gc[i] = 0.01
			}
			cfg.GradCorrection = gc
		}
		if _, err := TrainSupervised(rand.New(rand.NewSource(10)), m, ds, cfg); err != nil {
			t.Fatalf("TrainSupervised: %v", err)
		}
		_ = rng
		return nn.Flatten(m)
	}
	plain := run(false)
	corrected := run(true)
	diff := false
	for i := range plain {
		if plain[i] != corrected[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("gradient correction must change the trajectory")
	}
}

func TestTrainSupervisedEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := NewSupModel(rng, testArch(), 10)
	empty := &data.Dataset{NumClasses: 10, Dim: 16}
	if loss, err := TrainSupervised(rng, m, empty, DefaultSupTrainConfig()); err != nil || loss != 0 {
		t.Fatalf("empty dataset = %v, %v", loss, err)
	}
	ds := testDataset(t, 2)
	bad := DefaultSupTrainConfig()
	bad.Epochs = 0
	if _, err := TrainSupervised(rng, m, ds, bad); err == nil {
		t.Fatal("epochs=0 should error")
	}
}

func TestAccuracyEmptyDataset(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m := NewSupModel(rng, testArch(), 10)
	if m.Accuracy(&data.Dataset{NumClasses: 10, Dim: 16}) != 0 {
		t.Fatal("empty accuracy should be 0")
	}
}

func TestTrainLinearHeadSeparablePerfect(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	// Trivially separable features: one-hot-ish clusters.
	n, k := 60, 3
	feats := tensor.New(n, 4)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % k
		labels[i] = c
		row := make([]float64, 4)
		row[c] = 3 + rng.NormFloat64()*0.1
		feats.SetRow(i, row)
	}
	head, err := TrainLinearHead(rng, feats, labels, k, DefaultHeadConfig())
	if err != nil {
		t.Fatalf("TrainLinearHead: %v", err)
	}
	if acc := HeadAccuracy(head, feats, labels); acc < 0.95 {
		t.Fatalf("separable accuracy = %v", acc)
	}
}

func TestTrainLinearHeadValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	feats := tensor.RandN(rng, 1, 4, 3)
	if _, err := TrainLinearHead(rng, tensor.New(0, 3), nil, 2, DefaultHeadConfig()); err == nil {
		t.Fatal("empty features should error")
	}
	if _, err := TrainLinearHead(rng, feats, []int{0}, 2, DefaultHeadConfig()); err == nil {
		t.Fatal("label count mismatch should error")
	}
	bad := DefaultHeadConfig()
	bad.BatchSize = 0
	if _, err := TrainLinearHead(rng, feats, []int{0, 1, 0, 1}, 2, bad); err == nil {
		t.Fatal("batch=0 should error")
	}
}

func TestLinearProbeAccuracyEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	// An explicitly easy world: well-separated linear classes so the
	// identity "encoder" suffices. This tests the probe pipeline, not
	// dataset difficulty.
	spec := data.CIFAR10Spec()
	spec.Dim = 16
	spec.ClassSep = 4
	spec.StyleStd = 0.3
	spec.NoiseStd = 0.1
	spec.Warp = 0
	g, err := data.NewGenerator(spec, 5)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	ds := g.GenerateLabeled(rng, 40)
	train, test := ds.Split(rng, 0.8)
	identity := func(x *tensor.Tensor) *tensor.Tensor { return x }
	acc, err := LinearProbeAccuracy(rng, identity, train, test, 10, DefaultHeadConfig())
	if err != nil {
		t.Fatalf("LinearProbeAccuracy: %v", err)
	}
	if acc < 0.5 {
		t.Fatalf("probe accuracy = %v, want well above chance (0.1)", acc)
	}
	if _, err := LinearProbeAccuracy(rng, identity, &data.Dataset{}, test, 10, DefaultHeadConfig()); err == nil {
		t.Fatal("empty train should error")
	}
}

func TestHeadAccuracyEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	head := nn.NewLinear(rng, 3, 2, "h")
	if HeadAccuracy(head, tensor.New(0, 3), nil) != 0 {
		t.Fatal("empty head accuracy should be 0")
	}
}
