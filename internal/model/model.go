// Package model provides the supervised model used by the FL baselines
// (encoder + linear classification head, mirroring the paper's "ResNet-18
// with its fully-connected layers replaced by a linear classifier") and the
// local training loops shared across methods, including the linear-probe
// head training that implements the paper's personalization stage.
package model

import (
	"fmt"
	"math/rand"

	"calibre/internal/data"
	"calibre/internal/nn"
	"calibre/internal/ssl"
	"calibre/internal/tensor"
)

// SupModel is a supervised classifier: the same encoder architecture as the
// SSL backbone plus a linear head. The paper calls these Encoder and Head.
type SupModel struct {
	Arch       ssl.Arch
	NumClasses int
	Encoder    *nn.Sequential
	Head       *nn.Linear
}

var _ nn.Module = (*SupModel)(nil)

// NewSupModel builds a supervised model with fresh weights.
func NewSupModel(rng *rand.Rand, arch ssl.Arch, numClasses int) *SupModel {
	return &SupModel{
		Arch:       arch,
		NumClasses: numClasses,
		Encoder:    nn.MLP(rng, "enc", arch.InputDim, arch.HiddenDim, arch.FeatDim),
		Head:       nn.NewLinear(rng, arch.FeatDim, numClasses, "head"),
	}
}

// Params returns encoder parameters followed by head parameters; the
// boundary index is EncoderParamCount.
func (m *SupModel) Params() []*nn.Param {
	return append(m.Encoder.Params(), m.Head.Params()...)
}

// EncoderParamCount returns the number of scalar parameters in the encoder,
// i.e. the boundary between encoder and head in the flattened vector.
func (m *SupModel) EncoderParamCount() int { return nn.ParamCount(m.Encoder) }

// EncoderMask returns a mask over the flattened vector marking encoder
// positions true.
func (m *SupModel) EncoderMask() []bool {
	total := nn.ParamCount(m)
	enc := m.EncoderParamCount()
	mask := make([]bool, total)
	for i := 0; i < enc; i++ {
		mask[i] = true
	}
	return mask
}

// HeadMask returns a mask over the flattened vector marking head positions
// true.
func (m *SupModel) HeadMask() []bool {
	mask := m.EncoderMask()
	for i := range mask {
		mask[i] = !mask[i]
	}
	return mask
}

// Forward computes class logits for a constant input batch.
func (m *SupModel) Forward(x *tensor.Tensor) *nn.Node {
	return m.Head.Forward(m.Encoder.Forward(nn.Input(x)))
}

// Accuracy evaluates classification accuracy on a dataset.
func (m *SupModel) Accuracy(ds *data.Dataset) float64 {
	if ds.Len() == 0 {
		return 0
	}
	logits := m.Forward(data.Batch(ds.X)).Value
	return nn.Accuracy(logits, ds.Y)
}

// Features returns the encoder output for a dataset (no gradients kept).
func (m *SupModel) Features(ds *data.Dataset) *tensor.Tensor {
	return m.EncodeValue(data.Batch(ds.X))
}

// EncodeValue runs the encoder on a raw batch, returning the feature
// matrix. It satisfies FeatureFn for linear-probe personalization.
func (m *SupModel) EncodeValue(x *tensor.Tensor) *tensor.Tensor {
	return m.Encoder.Forward(nn.Input(x)).Value
}

// paramSubset adapts a parameter slice to nn.Module so optimizers can be
// scoped to part of a model (frozen-encoder / frozen-head training).
type paramSubset struct{ params []*nn.Param }

func (p paramSubset) Params() []*nn.Param { return p.params }

// SupTrainConfig controls supervised local training.
type SupTrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	Momentum  float64

	FreezeEncoder bool
	FreezeHead    bool

	// ClipNorm bounds the global gradient norm per step; 0 disables
	// clipping. Small-batch cross-entropy on freshly initialized networks
	// occasionally produces spiky gradients; clipping keeps runs stable.
	ClipNorm float64

	// ProxMu, when positive, adds FedProx/Ditto-style proximal pull
	// (mu/2)·||w - ProxTarget||² toward ProxTarget (a flattened vector over
	// all model params).
	ProxMu     float64
	ProxTarget []float64

	// GradCorrection, when non-nil, is added to the gradient each step
	// (SCAFFOLD's c - c_i term), in Flatten layout over all model params.
	GradCorrection []float64
}

// DefaultSupTrainConfig mirrors the paper's local update: 3 epochs, batch
// 32, SGD.
func DefaultSupTrainConfig() SupTrainConfig {
	return SupTrainConfig{Epochs: 3, BatchSize: 32, LR: 0.05, Momentum: 0.9, ClipNorm: 5}
}

// TrainSupervised runs local supervised training of m on ds and returns the
// mean cross-entropy per step.
func TrainSupervised(rng *rand.Rand, m *SupModel, ds *data.Dataset, cfg SupTrainConfig) (float64, error) {
	if ds.Len() == 0 {
		return 0, nil
	}
	if cfg.Epochs < 1 || cfg.BatchSize < 1 {
		return 0, fmt.Errorf("model: bad train config %+v", cfg)
	}
	var trainable []*nn.Param
	if !cfg.FreezeEncoder {
		trainable = append(trainable, m.Encoder.Params()...)
	}
	if !cfg.FreezeHead {
		trainable = append(trainable, m.Head.Params()...)
	}
	if len(trainable) == 0 {
		return 0, fmt.Errorf("model: nothing to train (both parts frozen)")
	}
	opt := nn.NewSGD(paramSubset{trainable}, cfg.LR, cfg.Momentum, 0)

	stepsPerEpoch := (ds.Len() + cfg.BatchSize - 1) / cfg.BatchSize
	batcher := data.NewBatcher(rng, ds.Len(), cfg.BatchSize)
	var total float64
	var steps int
	for e := 0; e < cfg.Epochs; e++ {
		for s := 0; s < stepsPerEpoch; s++ {
			idx, ok := batcher.Next()
			if !ok {
				// Degenerate single-sample dataset: train full-batch.
				idx = []int{0}
				if ds.Len() == 0 {
					break
				}
			}
			x := data.Batch(ds.Rows(idx))
			y := ds.Labels(idx)
			loss := nn.CrossEntropy(m.Forward(x), y)
			nn.ZeroGrads(m)
			if err := nn.Backward(loss); err != nil {
				return 0, fmt.Errorf("model: backward: %w", err)
			}
			if cfg.ProxMu > 0 && cfg.ProxTarget != nil {
				// grad += mu (w - w_target)
				diff := nn.VecSub(nn.Flatten(m), cfg.ProxTarget)
				if err := nn.AddToGrads(m, diff, cfg.ProxMu); err != nil {
					return 0, fmt.Errorf("model: proximal term: %w", err)
				}
			}
			if cfg.GradCorrection != nil {
				if err := nn.AddToGrads(m, cfg.GradCorrection, 1); err != nil {
					return 0, fmt.Errorf("model: grad correction: %w", err)
				}
			}
			if cfg.ClipNorm > 0 {
				opt.ClipGradNorm(cfg.ClipNorm)
			}
			opt.Step()
			total += loss.Value.At(0, 0)
			steps++
		}
	}
	if steps == 0 {
		return 0, nil
	}
	return total / float64(steps), nil
}
