// Package partition implements the label non-i.i.d. client partitioning
// schemes from the Calibre paper: quantity-based (Q-non-i.i.d., a fixed
// number S of classes per client) and distribution-based (D-non-i.i.d.,
// per-client class proportions drawn from a Dirichlet distribution), plus a
// uniform i.i.d. control.
package partition

import (
	"fmt"
	"math"
	"math/rand"

	"calibre/internal/data"
)

// Client holds one client's local data after partitioning.
type Client struct {
	ID        int
	Train     *data.Dataset
	Test      *data.Dataset
	Unlabeled *data.Dataset // nil unless an unlabeled pool was distributed
}

// TrainFrac is the fraction of each client's local samples used for
// training; the remainder is the local test set (class distribution is
// consistent between the two because both come from the same local split).
const TrainFrac = 0.8

// classPool cycles through the sample indices of one class, reshuffling at
// wrap-around so small global datasets can still serve many clients
// (documented sample reuse; see DESIGN.md §1).
type classPool struct {
	rng *rand.Rand
	idx []int
	cur int
}

func newClassPool(rng *rand.Rand, idx []int) *classPool {
	p := &classPool{rng: rng, idx: append([]int(nil), idx...)}
	p.rng.Shuffle(len(p.idx), func(i, j int) { p.idx[i], p.idx[j] = p.idx[j], p.idx[i] })
	return p
}

func (p *classPool) take(n int) []int {
	out := make([]int, 0, n)
	for len(out) < n {
		if len(p.idx) == 0 {
			break
		}
		if p.cur >= len(p.idx) {
			p.rng.Shuffle(len(p.idx), func(i, j int) { p.idx[i], p.idx[j] = p.idx[j], p.idx[i] })
			p.cur = 0
		}
		out = append(out, p.idx[p.cur])
		p.cur++
	}
	return out
}

// QuantityNonIID assigns each of numClients clients exactly classesPerClient
// classes and samplesPerClient samples (split evenly across its classes).
// Class sets rotate round-robin so every class is covered. This is the
// paper's (S, #samples) setting.
func QuantityNonIID(rng *rand.Rand, ds *data.Dataset, numClients, classesPerClient, samplesPerClient int) ([][]int, error) {
	k := ds.NumClasses
	if classesPerClient < 1 || classesPerClient > k {
		return nil, fmt.Errorf("partition: classesPerClient %d out of range [1,%d]", classesPerClient, k)
	}
	if numClients < 1 {
		return nil, fmt.Errorf("partition: numClients %d < 1", numClients)
	}
	pools := makePools(rng, ds)
	out := make([][]int, numClients)
	// Rotate through a shuffled class order so class coverage is balanced
	// across clients.
	order := rng.Perm(k)
	pos := 0
	for c := 0; c < numClients; c++ {
		classes := make([]int, classesPerClient)
		for s := 0; s < classesPerClient; s++ {
			classes[s] = order[pos%k]
			pos++
		}
		per := samplesPerClient / classesPerClient
		rem := samplesPerClient % classesPerClient
		var idx []int
		for s, cls := range classes {
			n := per
			if s < rem {
				n++
			}
			idx = append(idx, pools[cls].take(n)...)
		}
		out[c] = idx
	}
	return out, nil
}

// DirichletNonIID assigns each client samplesPerClient samples whose class
// proportions are drawn from Dirichlet(alpha) over the classes, the paper's
// (alpha, #samples) D-non-i.i.d. setting. Smaller alpha means more skew.
func DirichletNonIID(rng *rand.Rand, ds *data.Dataset, numClients int, alpha float64, samplesPerClient int) ([][]int, error) {
	if alpha <= 0 {
		return nil, fmt.Errorf("partition: alpha must be positive, got %v", alpha)
	}
	if numClients < 1 {
		return nil, fmt.Errorf("partition: numClients %d < 1", numClients)
	}
	k := ds.NumClasses
	pools := makePools(rng, ds)
	out := make([][]int, numClients)
	for c := 0; c < numClients; c++ {
		props := dirichlet(rng, alpha, k)
		counts := multinomialCounts(rng, props, samplesPerClient)
		var idx []int
		for cls, n := range counts {
			if n == 0 {
				continue
			}
			idx = append(idx, pools[cls].take(n)...)
		}
		out[c] = idx
	}
	return out, nil
}

// IID assigns each client samplesPerClient samples drawn uniformly from the
// dataset.
func IID(rng *rand.Rand, ds *data.Dataset, numClients, samplesPerClient int) ([][]int, error) {
	if numClients < 1 {
		return nil, fmt.Errorf("partition: numClients %d < 1", numClients)
	}
	n := ds.Len()
	if n == 0 {
		return nil, fmt.Errorf("partition: empty dataset")
	}
	out := make([][]int, numClients)
	perm := rng.Perm(n)
	cur := 0
	for c := 0; c < numClients; c++ {
		idx := make([]int, 0, samplesPerClient)
		for len(idx) < samplesPerClient {
			if cur >= len(perm) {
				perm = rng.Perm(n)
				cur = 0
			}
			idx = append(idx, perm[cur])
			cur++
		}
		out[c] = idx
	}
	return out, nil
}

func makePools(rng *rand.Rand, ds *data.Dataset) []*classPool {
	byClass := ds.ClassIndices()
	pools := make([]*classPool, len(byClass))
	for c, idx := range byClass {
		pools[c] = newClassPool(rng, idx)
	}
	return pools
}

// dirichlet samples a symmetric Dirichlet(alpha) distribution over k
// categories using Gamma(alpha,1) draws (Marsaglia–Tsang).
func dirichlet(rng *rand.Rand, alpha float64, k int) []float64 {
	out := make([]float64, k)
	var sum float64
	for i := range out {
		out[i] = gammaSample(rng, alpha)
		sum += out[i]
	}
	if sum == 0 {
		// Degenerate draw: fall back to uniform.
		for i := range out {
			out[i] = 1 / float64(k)
		}
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// gammaSample draws from Gamma(shape, 1) via Marsaglia–Tsang, with the
// standard boost for shape < 1.
func gammaSample(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		u := rng.Float64()
		if u == 0 {
			u = 1e-300
		}
		return gammaSample(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / (3 * math.Sqrt(d))
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// multinomialCounts draws n samples into k categories with the given
// proportions.
func multinomialCounts(rng *rand.Rand, props []float64, n int) []int {
	counts := make([]int, len(props))
	cdf := make([]float64, len(props))
	var acc float64
	for i, p := range props {
		acc += p
		cdf[i] = acc
	}
	for i := 0; i < n; i++ {
		u := rng.Float64() * acc
		// Linear scan is fine: class counts are small (≤100).
		j := 0
		for j < len(cdf)-1 && u > cdf[j] {
			j++
		}
		counts[j]++
	}
	return counts
}

// BuildClients materializes Client structs from per-client index sets:
// each client's local samples are split TrainFrac/1-TrainFrac into local
// train and test sets, and the optional unlabeled pool is divided evenly
// across clients.
func BuildClients(rng *rand.Rand, ds *data.Dataset, assignments [][]int, unlabeled *data.Dataset) []*Client {
	clients := make([]*Client, len(assignments))
	var unl [][]int
	if unlabeled != nil && unlabeled.Len() > 0 && len(assignments) > 0 {
		unl = splitEvenly(rng, unlabeled.Len(), len(assignments))
	}
	for i, idx := range assignments {
		local := ds.Subset(idx)
		train, test := local.Split(rng, TrainFrac)
		c := &Client{ID: i, Train: train, Test: test}
		if unl != nil {
			c.Unlabeled = unlabeled.Subset(unl[i])
		}
		clients[i] = c
	}
	return clients
}

// CorruptTrainLabels flips each client's *training* labels to a uniformly
// random different class with probability frac; local test labels stay
// clean. This models real-world annotation noise: label-dependent training
// (supervised FL) absorbs it during representation learning, while
// unsupervised training stages do not — only their personalization heads
// see the noisy labels.
func CorruptTrainLabels(rng *rand.Rand, clients []*Client, frac float64, numClasses int) {
	if frac <= 0 || numClasses < 2 {
		return
	}
	for _, c := range clients {
		for i, y := range c.Train.Y {
			if y < 0 || rng.Float64() >= frac {
				continue
			}
			flip := rng.Intn(numClasses - 1)
			if flip >= y {
				flip++
			}
			c.Train.Y[i] = flip
		}
	}
}

func splitEvenly(rng *rand.Rand, n, parts int) [][]int {
	perm := rng.Perm(n)
	out := make([][]int, parts)
	per := n / parts
	cur := 0
	for i := 0; i < parts; i++ {
		take := per
		if i < n%parts {
			take++
		}
		out[i] = append([]int(nil), perm[cur:cur+take]...)
		cur += take
	}
	return out
}
