package partition

import (
	"math"
	"math/rand"
	"testing"

	"calibre/internal/data"
)

func noisyClients(t *testing.T) []*Client {
	t.Helper()
	g, err := data.NewGenerator(data.CIFAR10Spec(), 21)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	rng := rand.New(rand.NewSource(22))
	ds := g.GenerateLabeled(rng, 200)
	parts, err := IID(rng, ds, 10, 150)
	if err != nil {
		t.Fatalf("IID: %v", err)
	}
	return BuildClients(rng, ds, parts, nil)
}

func TestCorruptTrainLabelsFlipsApproxFraction(t *testing.T) {
	clients := noisyClients(t)
	before := make([][]int, len(clients))
	testBefore := make([][]int, len(clients))
	for i, c := range clients {
		before[i] = append([]int(nil), c.Train.Y...)
		testBefore[i] = append([]int(nil), c.Test.Y...)
	}
	rng := rand.New(rand.NewSource(23))
	CorruptTrainLabels(rng, clients, 0.2, 10)
	var flipped, total int
	for i, c := range clients {
		for j, y := range c.Train.Y {
			total++
			if y != before[i][j] {
				flipped++
				if y == before[i][j] {
					t.Fatal("flip must change the label")
				}
				if y < 0 || y >= 10 {
					t.Fatalf("flipped label %d out of range", y)
				}
			}
		}
		// Test labels untouched.
		for j, y := range c.Test.Y {
			if y != testBefore[i][j] {
				t.Fatal("test labels must stay clean")
			}
		}
	}
	frac := float64(flipped) / float64(total)
	if math.Abs(frac-0.2) > 0.05 {
		t.Fatalf("flip fraction = %v, want ≈0.2", frac)
	}
}

func TestCorruptTrainLabelsNoopCases(t *testing.T) {
	clients := noisyClients(t)
	before := append([]int(nil), clients[0].Train.Y...)
	rng := rand.New(rand.NewSource(24))
	CorruptTrainLabels(rng, clients, 0, 10)  // frac 0
	CorruptTrainLabels(rng, clients, 0.5, 1) // 1 class: nothing to flip to
	for j, y := range clients[0].Train.Y {
		if y != before[j] {
			t.Fatal("no-op corruption must not change labels")
		}
	}
}

func TestCorruptTrainLabelsSkipsUnlabeled(t *testing.T) {
	g, err := data.NewGenerator(data.STL10Spec(), 25)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	rng := rand.New(rand.NewSource(26))
	ds := g.GenerateLabeled(rng, 50)
	parts, err := IID(rng, ds, 4, 40)
	if err != nil {
		t.Fatalf("IID: %v", err)
	}
	unl := g.GenerateUnlabeled(rng, 40)
	clients := BuildClients(rng, ds, parts, unl)
	// Force an unlabeled sample into a train set to exercise the guard.
	clients[0].Train.Y[0] = data.Unlabeled
	CorruptTrainLabels(rng, clients, 1.0, 10)
	if clients[0].Train.Y[0] != data.Unlabeled {
		t.Fatal("unlabeled samples must not be flipped")
	}
}
