package partition

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"calibre/internal/data"
)

func testDataset(t *testing.T, perClass int) *data.Dataset {
	t.Helper()
	g, err := data.NewGenerator(data.CIFAR10Spec(), 42)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	return g.GenerateLabeled(rand.New(rand.NewSource(1)), perClass)
}

func distinctClasses(ds *data.Dataset, idx []int) map[int]bool {
	out := make(map[int]bool)
	for _, i := range idx {
		out[ds.Y[i]] = true
	}
	return out
}

func TestQuantityNonIIDClassCount(t *testing.T) {
	ds := testDataset(t, 100)
	rng := rand.New(rand.NewSource(2))
	parts, err := QuantityNonIID(rng, ds, 20, 2, 50)
	if err != nil {
		t.Fatalf("QuantityNonIID: %v", err)
	}
	if len(parts) != 20 {
		t.Fatalf("clients = %d", len(parts))
	}
	for c, idx := range parts {
		if len(idx) != 50 {
			t.Fatalf("client %d has %d samples, want 50", c, len(idx))
		}
		if got := len(distinctClasses(ds, idx)); got != 2 {
			t.Fatalf("client %d spans %d classes, want 2", c, got)
		}
	}
}

func TestQuantityNonIIDCoversAllClasses(t *testing.T) {
	ds := testDataset(t, 100)
	rng := rand.New(rand.NewSource(3))
	parts, err := QuantityNonIID(rng, ds, 10, 2, 20)
	if err != nil {
		t.Fatalf("QuantityNonIID: %v", err)
	}
	covered := make(map[int]bool)
	for _, idx := range parts {
		for c := range distinctClasses(ds, idx) {
			covered[c] = true
		}
	}
	// 10 clients × 2 classes, round-robin over 10 classes ⇒ all covered.
	if len(covered) != ds.NumClasses {
		t.Fatalf("covered %d classes, want %d", len(covered), ds.NumClasses)
	}
}

func TestQuantityNonIIDUnevenSplit(t *testing.T) {
	ds := testDataset(t, 100)
	rng := rand.New(rand.NewSource(4))
	parts, err := QuantityNonIID(rng, ds, 4, 3, 50) // 50 % 3 != 0
	if err != nil {
		t.Fatalf("QuantityNonIID: %v", err)
	}
	for _, idx := range parts {
		if len(idx) != 50 {
			t.Fatalf("client got %d samples, want exactly 50", len(idx))
		}
	}
}

func TestQuantityNonIIDValidation(t *testing.T) {
	ds := testDataset(t, 10)
	rng := rand.New(rand.NewSource(5))
	if _, err := QuantityNonIID(rng, ds, 5, 0, 10); err == nil {
		t.Fatal("classesPerClient=0 should error")
	}
	if _, err := QuantityNonIID(rng, ds, 5, 11, 10); err == nil {
		t.Fatal("classesPerClient>K should error")
	}
	if _, err := QuantityNonIID(rng, ds, 0, 2, 10); err == nil {
		t.Fatal("numClients=0 should error")
	}
}

func TestDirichletNonIIDBasic(t *testing.T) {
	ds := testDataset(t, 200)
	rng := rand.New(rand.NewSource(6))
	parts, err := DirichletNonIID(rng, ds, 30, 0.3, 60)
	if err != nil {
		t.Fatalf("DirichletNonIID: %v", err)
	}
	for c, idx := range parts {
		if len(idx) != 60 {
			t.Fatalf("client %d has %d samples", c, len(idx))
		}
	}
}

// With small alpha, clients should be skewed: the top class should dominate.
func TestDirichletSkewIncreasesAsAlphaShrinks(t *testing.T) {
	ds := testDataset(t, 400)
	topShare := func(alpha float64) float64 {
		rng := rand.New(rand.NewSource(7))
		parts, err := DirichletNonIID(rng, ds, 40, alpha, 100)
		if err != nil {
			t.Fatalf("DirichletNonIID: %v", err)
		}
		var share float64
		for _, idx := range parts {
			counts := make(map[int]int)
			for _, i := range idx {
				counts[ds.Y[i]]++
			}
			top := 0
			for _, n := range counts {
				if n > top {
					top = n
				}
			}
			share += float64(top) / float64(len(idx))
		}
		return share / float64(len(parts))
	}
	skewed := topShare(0.1)
	uniform := topShare(100)
	if skewed <= uniform {
		t.Fatalf("alpha=0.1 top-share %v should exceed alpha=100 %v", skewed, uniform)
	}
	if uniform > 0.3 {
		t.Fatalf("alpha=100 should be near-uniform, top share = %v", uniform)
	}
}

func TestDirichletValidation(t *testing.T) {
	ds := testDataset(t, 10)
	rng := rand.New(rand.NewSource(8))
	if _, err := DirichletNonIID(rng, ds, 5, 0, 10); err == nil {
		t.Fatal("alpha=0 should error")
	}
	if _, err := DirichletNonIID(rng, ds, 0, 0.3, 10); err == nil {
		t.Fatal("numClients=0 should error")
	}
}

func TestIID(t *testing.T) {
	ds := testDataset(t, 100)
	rng := rand.New(rand.NewSource(9))
	parts, err := IID(rng, ds, 10, 100)
	if err != nil {
		t.Fatalf("IID: %v", err)
	}
	for _, idx := range parts {
		if len(idx) != 100 {
			t.Fatalf("client got %d", len(idx))
		}
		// Expect near-uniform classes: ≥5 distinct classes with 100 draws.
		if got := len(distinctClasses(ds, idx)); got < 5 {
			t.Fatalf("IID client spans only %d classes", got)
		}
	}
	if _, err := IID(rng, &data.Dataset{NumClasses: 2}, 3, 5); err == nil {
		t.Fatal("empty dataset should error")
	}
	if _, err := IID(rng, ds, 0, 5); err == nil {
		t.Fatal("numClients=0 should error")
	}
}

func TestBuildClients(t *testing.T) {
	ds := testDataset(t, 100)
	rng := rand.New(rand.NewSource(10))
	parts, err := QuantityNonIID(rng, ds, 8, 2, 50)
	if err != nil {
		t.Fatalf("QuantityNonIID: %v", err)
	}
	g, err := data.NewGenerator(data.CIFAR10Spec(), 42)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	unlabeled := g.GenerateUnlabeled(rng, 81)
	clients := BuildClients(rng, ds, parts, unlabeled)
	if len(clients) != 8 {
		t.Fatalf("clients = %d", len(clients))
	}
	var totalUnl int
	for i, c := range clients {
		if c.ID != i {
			t.Fatalf("client ID = %d, want %d", c.ID, i)
		}
		if c.Train.Len() != 40 || c.Test.Len() != 10 {
			t.Fatalf("client %d train/test = %d/%d, want 40/10", i, c.Train.Len(), c.Test.Len())
		}
		if c.Unlabeled == nil {
			t.Fatalf("client %d missing unlabeled share", i)
		}
		totalUnl += c.Unlabeled.Len()
		// Unlabeled shares must differ in size by at most 1.
		if d := c.Unlabeled.Len() - 81/8; d < 0 || d > 1 {
			t.Fatalf("client %d unlabeled share = %d", i, c.Unlabeled.Len())
		}
	}
	if totalUnl != 81 {
		t.Fatalf("unlabeled total = %d, want 81", totalUnl)
	}
}

func TestBuildClientsNoUnlabeled(t *testing.T) {
	ds := testDataset(t, 50)
	rng := rand.New(rand.NewSource(11))
	parts, err := IID(rng, ds, 4, 25)
	if err != nil {
		t.Fatalf("IID: %v", err)
	}
	clients := BuildClients(rng, ds, parts, nil)
	for _, c := range clients {
		if c.Unlabeled != nil {
			t.Fatal("Unlabeled should be nil when no pool is given")
		}
	}
}

// The local test split must have (approximately) the same class make-up as
// the local train split — the paper evaluates personalization on a test set
// "consistent" with the training distribution.
func TestLocalTestDistributionConsistent(t *testing.T) {
	ds := testDataset(t, 400)
	rng := rand.New(rand.NewSource(12))
	parts, err := QuantityNonIID(rng, ds, 6, 2, 200)
	if err != nil {
		t.Fatalf("QuantityNonIID: %v", err)
	}
	clients := BuildClients(rng, ds, parts, nil)
	for _, c := range clients {
		trainClasses := make(map[int]bool)
		for _, y := range c.Train.Y {
			trainClasses[y] = true
		}
		for _, y := range c.Test.Y {
			if !trainClasses[y] {
				t.Fatalf("client %d test label %d unseen in train", c.ID, y)
			}
		}
	}
}

func TestGammaSampleMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, shape := range []float64{0.3, 1.0, 4.5} {
		var sum float64
		const n = 20000
		for i := 0; i < n; i++ {
			sum += gammaSample(rng, shape)
		}
		mean := sum / n
		if math.Abs(mean-shape)/shape > 0.1 {
			t.Fatalf("Gamma(%v) sample mean = %v", shape, mean)
		}
	}
}

// Property: a Dirichlet draw is a probability vector.
func TestDirichletIsDistributionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		alpha := 0.05 + rng.Float64()*5
		k := 2 + rng.Intn(20)
		p := dirichlet(rng, alpha, k)
		var sum float64
		for _, v := range p {
			if v < 0 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: multinomial counts always total n.
func TestMultinomialCountsTotalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(10)
		props := dirichlet(rng, 1, k)
		n := 1 + rng.Intn(500)
		counts := multinomialCounts(rng, props, n)
		total := 0
		for _, c := range counts {
			total += c
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
