package tsne

import (
	"math"
	"math/rand"
	"testing"

	"calibre/internal/kmeans"
	"calibre/internal/tensor"
)

func blobs(rng *rand.Rand, k, perCluster, d int, sep, std float64) (*tensor.Tensor, []int) {
	centers := tensor.RandN(rng, sep, k, d)
	x := tensor.New(k*perCluster, d)
	labels := make([]int, k*perCluster)
	for c := 0; c < k; c++ {
		for i := 0; i < perCluster; i++ {
			idx := c*perCluster + i
			row := make([]float64, d)
			for j := 0; j < d; j++ {
				row[j] = centers.At(c, j) + rng.NormFloat64()*std
			}
			x.SetRow(idx, row)
			labels[idx] = c
		}
	}
	return x, labels
}

func TestEmbedValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Embed(rng, tensor.New(1, 3), DefaultConfig()); err == nil {
		t.Fatal("single point should error")
	}
}

func TestEmbedOutputShapeAndFiniteness(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, _ := blobs(rng, 3, 10, 8, 5, 0.5)
	cfg := DefaultConfig()
	cfg.Iters = 100
	y, err := Embed(rng, x, cfg)
	if err != nil {
		t.Fatalf("Embed: %v", err)
	}
	if y.Rows() != 30 || y.Cols() != 2 {
		t.Fatalf("embedding shape = %v", y.Shape())
	}
	for _, v := range y.Data() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite embedding value")
		}
	}
	// Output is centered.
	for _, m := range y.ColMeans() {
		if math.Abs(m) > 1e-6 {
			t.Fatalf("embedding not centered: %v", m)
		}
	}
}

// Well-separated clusters in high-dim must stay separated in the 2-D
// embedding: the silhouette of the embedded points should be clearly
// positive, and higher than for unstructured data.
func TestEmbedPreservesClusterStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, labels := blobs(rng, 3, 15, 10, 8, 0.4)
	cfg := DefaultConfig()
	cfg.Iters = 250
	y, err := Embed(rng, x, cfg)
	if err != nil {
		t.Fatalf("Embed: %v", err)
	}
	sep := kmeans.Silhouette(y, labels)
	if sep < 0.3 {
		t.Fatalf("embedded silhouette = %v, want clearly positive", sep)
	}

	noise := tensor.RandN(rng, 1, 45, 10)
	yn, err := Embed(rng, noise, cfg)
	if err != nil {
		t.Fatalf("Embed noise: %v", err)
	}
	mixed := kmeans.Silhouette(yn, labels)
	if sep <= mixed {
		t.Fatalf("structured embedding (%v) should beat noise (%v)", sep, mixed)
	}
}

func TestEmbedTinyInputClampsPerplexity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := tensor.RandN(rng, 1, 5, 4)
	cfg := DefaultConfig()
	cfg.Perplexity = 50 // far above what 5 points support
	cfg.Iters = 50
	y, err := Embed(rng, x, cfg)
	if err != nil {
		t.Fatalf("Embed: %v", err)
	}
	if y.Rows() != 5 {
		t.Fatalf("rows = %d", y.Rows())
	}
}

func TestEmbedDeterministicGivenRNG(t *testing.T) {
	x, _ := blobs(rand.New(rand.NewSource(5)), 2, 8, 6, 4, 0.5)
	cfg := DefaultConfig()
	cfg.Iters = 60
	y1, err := Embed(rand.New(rand.NewSource(9)), x, cfg)
	if err != nil {
		t.Fatalf("Embed: %v", err)
	}
	y2, err := Embed(rand.New(rand.NewSource(9)), x, cfg)
	if err != nil {
		t.Fatalf("Embed: %v", err)
	}
	for i := range y1.Data() {
		if y1.Data()[i] != y2.Data()[i] {
			t.Fatal("same seed must reproduce the embedding")
		}
	}
}

func TestEmbedZeroConfigDefaults(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := tensor.RandN(rng, 1, 10, 4)
	y, err := Embed(rng, x, Config{Perplexity: 5, Iters: 30})
	if err != nil {
		t.Fatalf("Embed: %v", err)
	}
	if y.Cols() != 2 {
		t.Fatalf("default output dims = %d", y.Cols())
	}
}

func TestJointAffinitiesAreDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := tensor.RandN(rng, 1, 12, 5)
	p := jointAffinities(x, 4)
	var sum float64
	n := 12
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := p[i*n+j]
			if v < 0 {
				t.Fatal("negative affinity")
			}
			if math.Abs(p[i*n+j]-p[j*n+i]) > 1e-12 {
				t.Fatal("affinities must be symmetric")
			}
			sum += v
		}
	}
	// Diagonal contributes only the 1e-12 floor; total ≈ 1.
	if math.Abs(sum-1) > 1e-3 {
		t.Fatalf("affinities sum = %v, want ≈1", sum)
	}
}
