// Package tsne implements exact t-distributed Stochastic Neighbor Embedding
// (van der Maaten & Hinton, 2008), used to regenerate the paper's
// representation-visualization figures (Figs. 1, 2, 5-8). Exact O(n²)
// affinities are fine at this reproduction's scale (hundreds to a couple
// thousand points per figure).
package tsne

import (
	"fmt"
	"math"
	"math/rand"

	"calibre/internal/tensor"
)

// Config controls an embedding run.
type Config struct {
	// OutputDims is almost always 2.
	OutputDims int
	// Perplexity balances local/global structure (typical 5-50).
	Perplexity float64
	// Iters is the number of gradient steps (default 300).
	Iters int
	// LearningRate defaults to 100.
	LearningRate float64
	// EarlyExaggeration multiplies affinities for the first quarter of the
	// iterations (default 4).
	EarlyExaggeration float64
}

// DefaultConfig returns sensible settings for figure-scale inputs.
func DefaultConfig() Config {
	return Config{OutputDims: 2, Perplexity: 20, Iters: 300, LearningRate: 100, EarlyExaggeration: 4}
}

// Embed computes a low-dimensional embedding of the rows of x.
func Embed(rng *rand.Rand, x *tensor.Tensor, cfg Config) (*tensor.Tensor, error) {
	n := x.Rows()
	if n < 2 {
		return nil, fmt.Errorf("tsne: need ≥2 points, got %d", n)
	}
	if cfg.OutputDims < 1 {
		cfg.OutputDims = 2
	}
	if cfg.Iters < 1 {
		cfg.Iters = 300
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 100
	}
	if cfg.EarlyExaggeration <= 0 {
		cfg.EarlyExaggeration = 4
	}
	perp := cfg.Perplexity
	maxPerp := float64(n-1) / 3
	if perp > maxPerp {
		perp = maxPerp // keep the bisection solvable for tiny inputs
	}
	if perp < 2 {
		perp = 2
	}

	p := jointAffinities(x, perp)
	// Early exaggeration.
	exagIters := cfg.Iters / 4
	for i := range p {
		p[i] *= cfg.EarlyExaggeration
	}

	y := tensor.RandN(rng, 1e-2, n, cfg.OutputDims)
	vel := tensor.New(n, cfg.OutputDims)
	grad := tensor.New(n, cfg.OutputDims)
	q := make([]float64, n*n)
	num := make([]float64, n*n)

	for iter := 0; iter < cfg.Iters; iter++ {
		if iter == exagIters {
			inv := 1 / cfg.EarlyExaggeration
			for i := range p {
				p[i] *= inv
			}
		}
		momentum := 0.5
		if iter >= 250 {
			momentum = 0.8
		}
		// Student-t similarities in embedding space.
		var qsum float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				t := 1 / (1 + tensor.SqDist(y.Row(i), y.Row(j)))
				num[i*n+j] = t
				num[j*n+i] = t
				qsum += 2 * t
			}
		}
		if qsum == 0 {
			qsum = 1
		}
		for i := range q {
			q[i] = math.Max(num[i]/qsum, 1e-12)
		}
		// Gradient: 4 Σ_j (p_ij - q_ij) num_ij (y_i - y_j).
		grad.Zero()
		for i := 0; i < n; i++ {
			gi := grad.Row(i)
			yi := y.Row(i)
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				mult := 4 * (p[i*n+j] - q[i*n+j]) * num[i*n+j]
				yj := y.Row(j)
				for d := range gi {
					gi[d] += mult * (yi[d] - yj[d])
				}
			}
		}
		// Momentum gradient descent.
		for i := 0; i < n; i++ {
			vi := vel.Row(i)
			yi := y.Row(i)
			gi := grad.Row(i)
			for d := range yi {
				vi[d] = momentum*vi[d] - cfg.LearningRate*gi[d]
				yi[d] += vi[d]
			}
		}
		centerRows(y)
	}
	return y, nil
}

// jointAffinities computes symmetrized p_ij with per-point bandwidths found
// by binary search to match the target perplexity.
func jointAffinities(x *tensor.Tensor, perplexity float64) []float64 {
	n := x.Rows()
	d2 := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dd := tensor.SqDist(x.Row(i), x.Row(j))
			d2[i*n+j] = dd
			d2[j*n+i] = dd
		}
	}
	logPerp := math.Log(perplexity)
	p := make([]float64, n*n)
	row := make([]float64, n)
	for i := 0; i < n; i++ {
		lo, hi := 0.0, math.Inf(1)
		beta := 1.0
		for iter := 0; iter < 50; iter++ {
			var sum float64
			for j := 0; j < n; j++ {
				if j == i {
					row[j] = 0
					continue
				}
				row[j] = math.Exp(-d2[i*n+j] * beta)
				sum += row[j]
			}
			if sum == 0 {
				sum = 1e-300
			}
			// Shannon entropy of the conditional distribution.
			var h float64
			for j := 0; j < n; j++ {
				if j == i || row[j] == 0 {
					continue
				}
				pj := row[j] / sum
				h -= pj * math.Log(pj)
			}
			diff := h - logPerp
			if math.Abs(diff) < 1e-5 {
				break
			}
			if diff > 0 { // entropy too high → tighten
				lo = beta
				if math.IsInf(hi, 1) {
					beta *= 2
				} else {
					beta = (beta + hi) / 2
				}
			} else {
				hi = beta
				beta = (beta + lo) / 2
			}
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				row[j] = math.Exp(-d2[i*n+j] * beta)
			}
		}
		var sum float64
		for j := 0; j < n; j++ {
			sum += row[j]
		}
		if sum == 0 {
			sum = 1e-300
		}
		for j := 0; j < n; j++ {
			p[i*n+j] = row[j] / sum
		}
	}
	// Symmetrize and normalize: p_ij = (p_j|i + p_i|j) / 2n.
	out := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out[i*n+j] = math.Max((p[i*n+j]+p[j*n+i])/(2*float64(n)), 1e-12)
		}
	}
	return out
}

func centerRows(y *tensor.Tensor) {
	means := y.ColMeans()
	n, d := y.Rows(), y.Cols()
	for i := 0; i < n; i++ {
		row := y.Row(i)
		for j := 0; j < d; j++ {
			row[j] -= means[j]
		}
	}
}
