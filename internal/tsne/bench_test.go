package tsne

import (
	"math/rand"
	"testing"

	"calibre/internal/tensor"
)

func BenchmarkEmbed200Points(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.RandN(rng, 1, 200, 48)
	cfg := DefaultConfig()
	cfg.Iters = 100
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Embed(rng, x, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
