package experiments

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"calibre/internal/fl"
	"calibre/internal/store"
)

// TestRunMethodResumable: a fresh resumable run checkpoints every round;
// re-running over the same store resumes from the terminal snapshot —
// replaying zero training — and reproduces the outcome bit-for-bit.
func TestRunMethodResumable(t *testing.T) {
	env, err := BuildEnvironment(settingCIFAR10Q(), ScaleSmoke, 17)
	if err != nil {
		t.Fatalf("BuildEnvironment: %v", err)
	}
	ckpt, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	ctx := context.Background()

	first, err := RunMethodResumable(ctx, env, "fedavg-ft", ckpt, 1)
	if err != nil {
		t.Fatalf("fresh resumable run: %v", err)
	}
	versions, err := ckpt.Versions()
	if err != nil || len(versions) != env.Preset.Rounds {
		t.Fatalf("Versions = %v (%v), want one per round (%d)", versions, err, env.Preset.Rounds)
	}

	second, err := RunMethodResumable(ctx, env, "fedavg-ft", ckpt, 1)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if len(second.Global) != len(first.Global) {
		t.Fatalf("global lengths differ: %d vs %d", len(second.Global), len(first.Global))
	}
	for i := range second.Global {
		if math.Float64bits(second.Global[i]) != math.Float64bits(first.Global[i]) {
			t.Fatalf("global[%d] differs on resume: %x vs %x", i, second.Global[i], first.Global[i])
		}
	}
	if !reflect.DeepEqual(second.History, first.History) {
		t.Fatal("history differs on resume")
	}
	if !reflect.DeepEqual(second.Participants.Accs, first.Participants.Accs) {
		t.Fatal("personalized accuracies differ on resume")
	}

	// A differently-configured process must be refused, not silently
	// resumed into divergence — whether the drift is the method…
	if _, err := RunMethodResumable(ctx, env, "fedavg", ckpt, 1); err == nil {
		t.Fatal("fingerprint mismatch accepted")
	}
	// …or a training-affecting preset knob.
	drifted, err := BuildEnvironment(settingCIFAR10Q(), ScaleSmoke, 17)
	if err != nil {
		t.Fatalf("BuildEnvironment: %v", err)
	}
	drifted.Preset.LocalEpochs++
	if _, err := RunMethodResumable(ctx, drifted, "fedavg-ft", ckpt, 1); err == nil {
		t.Fatal("preset drift accepted")
	}

	// A shrunken round budget must refuse the newer checkpoint loudly
	// rather than silently retraining from scratch into the same store.
	shrunk, err := BuildEnvironment(settingCIFAR10Q(), ScaleSmoke, 17)
	if err != nil {
		t.Fatalf("BuildEnvironment: %v", err)
	}
	shrunk.Preset.Rounds = 1
	if _, err := RunMethodResumable(ctx, shrunk, "fedavg-ft", ckpt, 1); err == nil {
		t.Fatal("checkpoint beyond the round budget accepted")
	}
}

// TestResumeMidRunBitIdenticalRealMethods interrupts real methods halfway
// and resumes them in a fresh "process" (new method instance, cold
// per-client model caches): the finished run must be bit-identical to an
// uninterrupted one. This pins the trainers' cache-warmth RNG invariance —
// lazily constructed client state must not shift the training RNG stream —
// for both the supervised (supBase) and SSL (core.SSLTrainer) paths.
func TestResumeMidRunBitIdenticalRealMethods(t *testing.T) {
	const total, cut = 4, 2
	for _, method := range []string{"fedavg-ft", "calibre-simclr"} {
		t.Run(method, func(t *testing.T) {
			build := func(rounds int) *Environment {
				env, err := BuildEnvironment(settingCIFAR10Q(), ScaleSmoke, 23)
				if err != nil {
					t.Fatalf("BuildEnvironment: %v", err)
				}
				env.Preset.Rounds = rounds
				return env
			}
			ref, err := RunMethod(context.Background(), build(total), method)
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}

			ckpt, err := store.Open(t.TempDir())
			if err != nil {
				t.Fatalf("store.Open: %v", err)
			}
			if _, err := RunMethodResumable(context.Background(), build(cut), method, ckpt, 1); err != nil {
				t.Fatalf("interrupted run: %v", err)
			}
			got, err := RunMethodResumable(context.Background(), build(total), method, ckpt, 1)
			if err != nil {
				t.Fatalf("resumed run: %v", err)
			}

			for i := range ref.Global {
				if math.Float64bits(got.Global[i]) != math.Float64bits(ref.Global[i]) {
					t.Fatalf("global[%d] differs after mid-run resume: %x vs %x", i, got.Global[i], ref.Global[i])
				}
			}
			if !reflect.DeepEqual(got.History, ref.History) {
				t.Fatal("history differs after mid-run resume")
			}
			if !reflect.DeepEqual(got.Participants.Accs, ref.Participants.Accs) {
				t.Fatal("personalized accuracies differ after mid-run resume")
			}
		})
	}
}

// TestRunMethodResumableRefusesStatefulMethods: methods whose clients
// carry cross-round state a snapshot cannot capture must be refused
// upfront — before any training, and before any never-resumable snapshot
// lands in the store.
func TestRunMethodResumableRefusesStatefulMethods(t *testing.T) {
	env, err := BuildEnvironment(settingCIFAR10Q(), ScaleSmoke, 17)
	if err != nil {
		t.Fatalf("BuildEnvironment: %v", err)
	}
	ckpt, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	for _, method := range []string{"fedema", "scaffold", "fedrep", "apfl", "calibre-byol", "pfl-mocov2"} {
		if _, err := RunMethodResumable(context.Background(), env, method, ckpt, 1); !errors.Is(err, fl.ErrStatefulResume) {
			t.Errorf("%s: err = %v, want fl.ErrStatefulResume", method, err)
		}
	}
	if versions, err := ckpt.Versions(); err != nil || len(versions) != 0 {
		t.Fatalf("store not left empty: versions=%v err=%v", versions, err)
	}
}
