package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"calibre/internal/core"
	"calibre/internal/eval"
	"calibre/internal/fl"
	"calibre/internal/kmeans"
	"calibre/internal/tensor"
	"calibre/internal/tsne"
)

// Fig3Methods is the paper's full Fig. 3 method roster (20 methods).
func Fig3Methods() []string {
	return []string{
		"fedavg", "fedavg-ft", "script-fair", "script-convergent",
		"apfl", "ditto", "lg-fedavg", "fedper", "fedrep", "perfedavg",
		"scaffold", "scaffold-ft", "fedbabu", "fedema",
		"calibre-byol", "calibre-simsiam", "calibre-mocov2",
		"calibre-swav", "calibre-smog", "calibre-simclr",
	}
}

// Fig4Methods is the Fig. 4 roster (12 methods incl. pFL-SSL ablations).
func Fig4Methods() []string {
	return []string{
		"fedavg-ft", "script-convergent", "apfl", "lg-fedavg", "fedper",
		"fedrep", "fedbabu", "fedema",
		"pfl-mocov2", "pfl-simclr", "calibre-mocov2", "calibre-simclr",
	}
}

// SettingReport is all methods' results on one setting.
type SettingReport struct {
	Setting string
	Results []eval.MethodResult
	// Novel holds results on held-out clients (Fig. 4's right panels).
	Novel []eval.MethodResult
}

// EmbeddingResult quantifies one method's representation geometry and
// carries the 2-D t-SNE points for plotting.
type EmbeddingResult struct {
	Method string
	// Silhouette of the (high-dimensional) features under true labels:
	// the quantitative version of "crisp vs fuzzy class boundaries".
	Silhouette float64
	// IntraInter is mean intra-class distance / mean inter-class distance.
	IntraInter float64
	// Purity of a KMeans clustering (K = #classes) against true labels.
	Purity float64
	// Points is the n×2 t-SNE embedding; Labels/Owners align with rows.
	Points *tensor.Tensor
	Labels []int
	Owners []int
	// PerClient carries the per-client close-ups of Figs. 2 and 6.
	PerClient []ClientEmbedding
}

// ClientEmbedding is one client's close-up: local representation quality
// plus its personalized accuracy.
type ClientEmbedding struct {
	ClientID   int
	Silhouette float64
	Accuracy   float64
}

// AblationRow is one Table I row: a regularizer combination evaluated for
// each Calibre SSL variant.
type AblationRow struct {
	UseLn, UseLp bool
	// Results maps SSL variant name → accuracy summary.
	Results map[string]eval.Summary
}

// Report is the output of one experiment run.
type Report struct {
	ID       string
	Title    string
	Scale    Scale
	Settings []SettingReport
	// Embeddings is populated by the t-SNE figures (1, 2, 5-8).
	Embeddings []EmbeddingResult
	// Ablation is populated by table1.
	Ablation []AblationRow
	// AblationVariants lists the SSL variants (column order) of Ablation.
	AblationVariants []string
}

// IDs lists all runnable experiment identifiers: the paper's artifacts
// (fig1..fig8, table1) plus this reproduction's design-choice ablation.
func IDs() []string {
	return []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "table1", "design"}
}

// Run executes an experiment by paper label.
func Run(ctx context.Context, id string, scale Scale, seed int64) (*Report, error) {
	switch id {
	case "fig1":
		return runEmbeddingFigure(ctx, id, "t-SNE across clients: plain pFL-SSL has fuzzy boundaries",
			settingCIFAR10D(), []string{"pfl-simclr", "pfl-byol"}, scale, seed, 10, false)
	case "fig2":
		return runEmbeddingFigure(ctx, id, "t-SNE within clients: pFL-SSL per-client close-ups",
			settingCIFAR10D(), []string{"pfl-simclr", "pfl-byol"}, scale, seed, 10, true)
	case "fig3":
		return runAccuracyFigure(ctx, id, "Mean/variance of accuracy across Q- and D-non-IID settings",
			[]Setting{settingCIFAR10Q(), settingCIFAR100Q(), settingSTL10Q(), settingSTL10D()},
			Fig3Methods(), scale, seed, false)
	case "fig4":
		return runAccuracyFigure(ctx, id, "Mean/variance of accuracy incl. novel clients (D-non-IID)",
			[]Setting{settingCIFAR10D(), settingCIFAR100D()},
			Fig4Methods(), scale, seed, true)
	case "fig5":
		return runEmbeddingFigure(ctx, id, "t-SNE: calibrated vs plain SimSiam/MoCoV2",
			settingCIFAR10D(), []string{"pfl-simsiam", "pfl-mocov2", "calibre-simsiam", "calibre-mocov2"}, scale, seed, 6, false)
	case "fig6":
		return runEmbeddingFigure(ctx, id, "t-SNE: Calibre (SimCLR) vs Calibre (BYOL) with close-ups",
			settingCIFAR10D(), []string{"calibre-simclr", "calibre-byol"}, scale, seed, 6, true)
	case "fig7":
		return runEmbeddingFigure(ctx, id, "t-SNE: supervised pFL vs Calibre on CIFAR-10",
			settingCIFAR10D(), []string{"fedavg", "fedrep", "fedper", "fedbabu", "lg-fedavg", "calibre-simclr"}, scale, seed, 6, false)
	case "fig8":
		return runEmbeddingFigure(ctx, id, "t-SNE: supervised pFL vs Calibre on STL-10",
			settingSTL10Q(), []string{"fedavg", "fedrep", "fedper", "fedbabu", "lg-fedavg", "calibre-simclr"}, scale, seed, 6, false)
	case "table1":
		return runTable1(ctx, scale, seed)
	case "design":
		return runDesignAblation(ctx, scale, seed)
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
}

// DesignVariant builds a Calibre (SimCLR) method with one reproduction
// design choice toggled off (see DESIGN.md §1.1). Supported variants:
// "full", "fixed-k", "no-gate", "no-filter", "no-warmup".
func DesignVariant(env *Environment, variant string) (*fl.Method, error) {
	cfg := core.DefaultConfig(env.Arch, "simclr", env.NumClasses)
	cfg.Train.Epochs = 2 * env.Preset.LocalEpochs
	cfg.Train.Augment = env.Augment
	cfg.Opts.WarmupRounds = warmupFor(env.Preset)
	switch variant {
	case "full":
	case "fixed-k":
		cfg.Opts.FixedK = true
	case "no-gate":
		cfg.Opts.NoQualityGate = true
	case "no-filter":
		cfg.Opts.KeepFrac = 0
	case "no-warmup":
		cfg.Opts.WarmupRounds = -1 // active from round 0
	default:
		return nil, fmt.Errorf("experiments: unknown design variant %q", variant)
	}
	m, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	m.Name = "calibre-simclr{" + variant + "}"
	return m, nil
}

// runDesignAblation evaluates the reproduction-specific design choices
// documented in DESIGN.md §1.1 by switching each off in turn.
func runDesignAblation(ctx context.Context, scale Scale, seed int64) (*Report, error) {
	env, err := BuildEnvironment(settingCIFAR10Q(), scale, seed)
	if err != nil {
		return nil, err
	}
	env.Novel = nil
	report := &Report{
		ID:    "design",
		Title: "Design-choice ablation: adaptive K, quality gate, confidence filter, warm-up",
		Scale: scale,
	}
	sr := SettingReport{Setting: settingCIFAR10Q().Name}
	for _, variant := range []string{"full", "fixed-k", "no-gate", "no-filter", "no-warmup"} {
		m, err := DesignVariant(env, variant)
		if err != nil {
			return nil, err
		}
		out, err := RunBuiltMethod(ctx, env, m)
		if err != nil {
			return nil, err
		}
		sr.Results = append(sr.Results, out.Participants)
	}
	report.Settings = []SettingReport{sr}
	return report, nil
}

func runAccuracyFigure(ctx context.Context, id, title string, settings []Setting, methods []string, scale Scale, seed int64, novel bool) (*Report, error) {
	report := &Report{ID: id, Title: title, Scale: scale}
	for _, setting := range settings {
		env, err := BuildEnvironment(setting, scale, seed)
		if err != nil {
			return nil, err
		}
		if !novel {
			env.Novel = nil
		}
		sr := SettingReport{Setting: setting.Name}
		for _, m := range methods {
			out, err := RunMethod(ctx, env, m)
			if err != nil {
				return nil, err
			}
			sr.Results = append(sr.Results, out.Participants)
			if novel {
				sr.Novel = append(sr.Novel, out.Novel)
			}
		}
		report.Settings = append(report.Settings, sr)
	}
	return report, nil
}

func runEmbeddingFigure(ctx context.Context, id, title string, setting Setting, methods []string, scale Scale, seed int64, numClients int, closeups bool) (*Report, error) {
	env, err := BuildEnvironment(setting, scale, seed)
	if err != nil {
		return nil, err
	}
	env.Novel = nil
	if numClients > len(env.Participants) {
		numClients = len(env.Participants)
	}
	clientIdx := make([]int, numClients)
	for i := range clientIdx {
		clientIdx[i] = i
	}
	report := &Report{ID: id, Title: title, Scale: scale}
	sr := SettingReport{Setting: setting.Name}
	for _, m := range methods {
		out, err := RunMethod(ctx, env, m)
		if err != nil {
			return nil, err
		}
		sr.Results = append(sr.Results, out.Participants)
		emb, err := embeddingFor(env, m, out, clientIdx, closeups)
		if err != nil {
			return nil, err
		}
		report.Embeddings = append(report.Embeddings, *emb)
	}
	report.Settings = []SettingReport{sr}
	return report, nil
}

// maxEmbedPoints caps the t-SNE input size (exact t-SNE is O(n²)).
const maxEmbedPoints = 400

func embeddingFor(env *Environment, methodName string, out *MethodOutcome, clientIdx []int, closeups bool) (*EmbeddingResult, error) {
	fn, err := EncoderFor(env, methodName, out.Global)
	if err != nil {
		return nil, err
	}
	perClient := maxEmbedPoints / len(clientIdx)
	feats, labels, owners, err := ClientFeatures(env, fn, clientIdx, perClient)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(env.Seed + 7))
	res := &EmbeddingResult{
		Method:     methodName,
		Silhouette: kmeans.Silhouette(feats, labels),
		IntraInter: eval.IntraInterRatio(feats, labels),
		Labels:     labels,
		Owners:     owners,
	}
	if clus, err := kmeans.Run(rng, feats, kmeans.Config{K: env.NumClasses}); err == nil {
		if p, perr := eval.ClusterPurity(clus.Assign, labels); perr == nil {
			res.Purity = p
		}
	}
	cfg := tsne.DefaultConfig()
	cfg.Iters = tsneItersFor(env.Preset)
	points, err := tsne.Embed(rng, feats, cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: t-SNE for %s: %w", methodName, err)
	}
	res.Points = points

	if closeups {
		res.PerClient = clientCloseups(env, fn, out, clientIdx)
	}
	return res, nil
}

func tsneItersFor(p Preset) int {
	switch {
	case p.Clients >= 100:
		return 300
	case p.Clients >= 20:
		return 150
	default:
		return 60
	}
}

func clientCloseups(env *Environment, fn func(*tensor.Tensor) *tensor.Tensor, out *MethodOutcome, clientIdx []int) []ClientEmbedding {
	// The paper highlights two representative clients (client-14 and
	// client-56 of 100); we take the median and worst clients among the
	// embedded subset by personalized accuracy.
	type ranked struct {
		idx int
		acc float64
	}
	rankedClients := make([]ranked, 0, len(clientIdx))
	for _, ci := range clientIdx {
		if ci < len(out.Participants.Accs) {
			rankedClients = append(rankedClients, ranked{ci, out.Participants.Accs[ci]})
		}
	}
	if len(rankedClients) == 0 {
		return nil
	}
	sort.Slice(rankedClients, func(i, j int) bool { return rankedClients[i].acc < rankedClients[j].acc })
	picks := []ranked{rankedClients[0]}
	if len(rankedClients) > 1 {
		picks = append(picks, rankedClients[len(rankedClients)/2])
	}
	var outStats []ClientEmbedding
	for _, p := range picks {
		c := env.Participants[p.idx]
		batch := tensor.New(c.Train.Len(), len(c.Train.X[0]))
		for i, r := range c.Train.X {
			batch.SetRow(i, r)
		}
		feats := fn(batch)
		outStats = append(outStats, ClientEmbedding{
			ClientID:   c.ID,
			Silhouette: kmeans.Silhouette(feats, c.Train.Y),
			Accuracy:   p.acc,
		})
	}
	return outStats
}

func runTable1(ctx context.Context, scale Scale, seed int64) (*Report, error) {
	env, err := BuildEnvironment(settingCIFAR10Q(), scale, seed)
	if err != nil {
		return nil, err
	}
	env.Novel = nil
	variants := []string{"simclr", "swav", "smog"}
	report := &Report{
		ID:               "table1",
		Title:            "Ablation of L_n and L_p on CIFAR-10 Q(2,500)",
		Scale:            scale,
		AblationVariants: variants,
	}
	for _, combo := range [][2]bool{{false, false}, {true, false}, {false, true}, {true, true}} {
		row := AblationRow{UseLn: combo[0], UseLp: combo[1], Results: make(map[string]eval.Summary, len(variants))}
		for _, v := range variants {
			m, err := AblationVariant(env, v, combo[0], combo[1])
			if err != nil {
				return nil, err
			}
			out, err := RunBuiltMethod(ctx, env, m)
			if err != nil {
				return nil, err
			}
			row.Results[v] = out.Participants.Summary
		}
		report.Ablation = append(report.Ablation, row)
	}
	return report, nil
}
