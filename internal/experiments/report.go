package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"calibre/internal/eval"
)

// String renders a full human-readable report (the text analogue of the
// paper's figures/tables).
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s (%s scale): %s ===\n", r.ID, r.Scale, r.Title)
	for _, sr := range r.Settings {
		fmt.Fprintf(&b, "\n--- setting %s ---\n", sr.Setting)
		writeResultsTable(&b, "participating clients", sr.Results)
		if len(sr.Novel) > 0 {
			writeResultsTable(&b, "novel clients", sr.Novel)
		}
	}
	if len(r.Embeddings) > 0 {
		fmt.Fprintf(&b, "\n--- representation quality (higher silhouette/purity, lower intra/inter = crisper class boundaries) ---\n")
		fmt.Fprintf(&b, "%-22s %12s %12s %10s\n", "method", "silhouette", "intra/inter", "purity")
		for _, e := range r.Embeddings {
			fmt.Fprintf(&b, "%-22s %12.4f %12.4f %10.4f\n", e.Method, e.Silhouette, e.IntraInter, e.Purity)
			for _, c := range e.PerClient {
				fmt.Fprintf(&b, "    client-%d: silhouette %.4f, accuracy %.3f\n", c.ClientID, c.Silhouette, c.Accuracy)
			}
		}
	}
	if len(r.Ablation) > 0 {
		fmt.Fprintf(&b, "\n%-6s %-6s", "L_n", "L_p")
		for _, v := range r.AblationVariants {
			fmt.Fprintf(&b, " %22s", "calibre-"+v)
		}
		b.WriteByte('\n')
		for _, row := range r.Ablation {
			fmt.Fprintf(&b, "%-6s %-6s", check(row.UseLn), check(row.UseLp))
			for _, v := range r.AblationVariants {
				s := row.Results[v]
				fmt.Fprintf(&b, "        %6.2f ± %-6.2f", s.Mean*100, s.Std*100)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func check(v bool) string {
	if v {
		return "yes"
	}
	return "-"
}

func writeResultsTable(b *strings.Builder, label string, results []eval.MethodResult) {
	fmt.Fprintf(b, "%s:\n", label)
	fmt.Fprintf(b, "%-22s %10s %10s %10s %10s\n", "method", "mean", "variance", "std", "bottom10")
	sorted := eval.RankByMean(results)
	for _, res := range sorted {
		s := res.Summary
		fmt.Fprintf(b, "%-22s %10.4f %10.4f %10.4f %10.4f\n", res.Method, s.Mean, s.Variance, s.Std, s.Bottom10)
	}
}

// BestByMean returns the method with the highest participant mean accuracy
// in a setting report.
func (sr SettingReport) BestByMean() (eval.MethodResult, bool) {
	if len(sr.Results) == 0 {
		return eval.MethodResult{}, false
	}
	return eval.RankByMean(sr.Results)[0], true
}

// Find returns a method's result in this setting.
func (sr SettingReport) Find(method string) (eval.MethodResult, bool) {
	for _, r := range sr.Results {
		if r.Method == method {
			return r, true
		}
	}
	return eval.MethodResult{}, false
}

// FindNovel returns a method's novel-client result in this setting.
func (sr SettingReport) FindNovel(method string) (eval.MethodResult, bool) {
	for _, r := range sr.Novel {
		if r.Method == method {
			return r, true
		}
	}
	return eval.MethodResult{}, false
}

// WriteEmbeddingsCSV dumps t-SNE points as CSV: method,x,y,label,client.
// This is the plotting input for regenerating the paper's figures.
func WriteEmbeddingsCSV(w io.Writer, embeddings []EmbeddingResult) error {
	if _, err := fmt.Fprintln(w, "method,x,y,label,client"); err != nil {
		return err
	}
	for _, e := range embeddings {
		if e.Points == nil {
			continue
		}
		for i := 0; i < e.Points.Rows(); i++ {
			if _, err := fmt.Fprintf(w, "%s,%.6f,%.6f,%d,%d\n",
				e.Method, e.Points.At(i, 0), e.Points.At(i, 1), e.Labels[i], e.Owners[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteResultsCSV dumps per-method summaries: setting,cohort,method,mean,
// variance,std,bottom10.
func WriteResultsCSV(w io.Writer, r *Report) error {
	if _, err := fmt.Fprintln(w, "setting,cohort,method,mean,variance,std,bottom10"); err != nil {
		return err
	}
	writeRows := func(setting, cohort string, results []eval.MethodResult) error {
		sorted := append([]eval.MethodResult(nil), results...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Method < sorted[j].Method })
		for _, res := range sorted {
			s := res.Summary
			if _, err := fmt.Fprintf(w, "%s,%s,%s,%.6f,%.6f,%.6f,%.6f\n",
				setting, cohort, res.Method, s.Mean, s.Variance, s.Std, s.Bottom10); err != nil {
				return err
			}
		}
		return nil
	}
	for _, sr := range r.Settings {
		if err := writeRows(sr.Setting, "participants", sr.Results); err != nil {
			return err
		}
		if err := writeRows(sr.Setting, "novel", sr.Novel); err != nil {
			return err
		}
	}
	return nil
}
