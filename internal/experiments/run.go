package experiments

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"calibre/internal/baselines"
	"calibre/internal/core"
	"calibre/internal/eval"
	"calibre/internal/fl"
	"calibre/internal/model"
	"calibre/internal/nn"
	"calibre/internal/param"
	"calibre/internal/ssl"
	"calibre/internal/store"
	"calibre/internal/tensor"
)

// MethodOutcome is one method's complete result on one setting.
type MethodOutcome struct {
	Method       string
	Setting      string
	Participants eval.MethodResult
	Novel        eval.MethodResult
	History      []fl.RoundStats
	Global       []float64
}

// baselineConfig derives the shared baseline configuration for an
// environment.
func baselineConfig(env *Environment) baselines.Config {
	cfg := baselines.DefaultConfig(env.Arch, env.NumClasses)
	cfg.Train.Epochs = env.Preset.LocalEpochs
	cfg.Augment = env.Augment
	cfg.WarmupRounds = warmupFor(env.Preset)
	return cfg
}

// warmupFor scales Calibre's regularizer warm-up to the round budget: a
// quarter of the rounds, capped at the default 10 (so the ci and paper
// scales match the recorded EXPERIMENTS.md settings and short smoke runs
// still reach the calibration phase).
func warmupFor(p Preset) int {
	w := p.Rounds / 4
	if w < 1 {
		w = 1
	}
	if w > 10 {
		w = 10
	}
	return w
}

// BuildMethod constructs any registered method for the environment.
func BuildMethod(env *Environment, name string) (*fl.Method, error) {
	return baselines.Build(name, baselineConfig(env), len(env.Participants))
}

// RunMethod trains a registered method on the environment and personalizes
// both participants and novel clients.
func RunMethod(ctx context.Context, env *Environment, name string) (*MethodOutcome, error) {
	m, err := BuildMethod(env, name)
	if err != nil {
		return nil, err
	}
	return RunBuiltMethod(ctx, env, m)
}

// RunBuiltMethod is RunMethod for an externally constructed method (used by
// the Table I ablation, which toggles Calibre's regularizers directly).
func RunBuiltMethod(ctx context.Context, env *Environment, m *fl.Method) (*MethodOutcome, error) {
	return runBuilt(ctx, env, m, nil)
}

// RunBuiltMethodWith is RunBuiltMethod with access to the simulator
// configuration: mutate (may be nil) runs after the preset-derived fields
// are filled and can adjust any knob — parallelism budgets, the delta
// wire, quorum/dropout/straggler policies, checkpoint wiring. The sweep
// engine drives every cell through this entry point.
func RunBuiltMethodWith(ctx context.Context, env *Environment, m *fl.Method, mutate func(*fl.SimConfig)) (*MethodOutcome, error) {
	return runBuilt(ctx, env, m, mutate)
}

// RunMethodResumable is RunMethod with durable round snapshots: round
// state is checkpointed into ckpt every `every` rounds (≤0 means every
// round) and, when the store already holds a matching snapshot, training
// resumes from it instead of starting over — the crash-recovery path for
// long simulator runs. The snapshot fingerprint binds the store to this
// (method, setting, scale, seed, population) combination; resuming under a
// different configuration fails with store.ErrFingerprintMismatch.
// Methods carrying cross-round state a snapshot cannot capture (FedEMA,
// the partial-personalization family, SCAFFOLD, APFL, Ditto, and the
// BYOL/MoCo SSL flavors with their momentum state) are refused upfront
// with fl.ErrStatefulResume — their checkpoints could never be resumed,
// so writing them would only waste the crash-recovery budget. Run such
// methods with RunMethod instead.
func RunMethodResumable(ctx context.Context, env *Environment, name string, ckpt *store.Store, every int) (*MethodOutcome, error) {
	m, err := BuildMethod(env, name)
	if err != nil {
		return nil, err
	}
	if !fl.Resumable(m) {
		return nil, fmt.Errorf("experiments: %s: %w (use RunMethod)", name, fl.ErrStatefulResume)
	}
	// The fingerprint covers every training-affecting knob — the whole
	// preset except Rounds (which resume legitimately extends) — so a
	// checkpoint can never silently continue under a drifted configuration.
	preset := env.Preset
	preset.Rounds = 0
	fp := store.Fingerprint("simulator", name, env.Setting.Name,
		fmt.Sprint(env.Seed), fmt.Sprintf("%+v", preset), fmt.Sprint(len(env.Participants)))
	var resumeFrom *fl.SimState
	snap, version, err := ckpt.Resume(fp)
	switch {
	case errors.Is(err, store.ErrNoCheckpoint):
		// Empty store: a fresh run that starts checkpointing.
	case err != nil:
		return nil, err
	case snap.State.Round > env.Preset.Rounds:
		// Refuse loudly (like the server path) rather than silently
		// discarding checkpointed training and appending from-scratch
		// snapshots to the same store.
		return nil, fmt.Errorf("experiments: checkpoint v%d is at round %d, beyond the %d-round budget (raise Rounds or use a fresh store)",
			version, snap.State.Round, env.Preset.Rounds)
	default:
		resumeFrom = &snap.State
	}
	return runBuilt(ctx, env, m, func(cfg *fl.SimConfig) {
		cfg.CheckpointEvery = every
		cfg.ResumeFrom = resumeFrom
		cfg.OnCheckpoint = ckpt.SaveHook(store.Meta{Seed: env.Seed, Fingerprint: fp, Runtime: "simulator"}, nil)
	})
}

// runBuilt drives the simulator and both personalization stages; mutate,
// when non-nil, adjusts the simulator config (checkpoint wiring).
func runBuilt(ctx context.Context, env *Environment, m *fl.Method, mutate func(*fl.SimConfig)) (*MethodOutcome, error) {
	cfg := fl.SimConfig{
		Rounds:          env.Preset.Rounds,
		ClientsPerRound: env.Preset.ClientsPerRound,
		Seed:            env.Seed,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	sim, err := fl.NewSimulator(cfg, m, env.Participants)
	if err != nil {
		return nil, err
	}
	global, history, err := sim.Run(ctx)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s on %s: %w", m.Name, env.Setting.Name, err)
	}
	// Personalization honors the same explicit parallelism budget as
	// training (0 keeps the GOMAXPROCS default), so a sweep running many
	// cells concurrently bounds its total fan-out at both stages.
	part, err := fl.PersonalizeAll(ctx, env.Seed, m, env.Participants, global, cfg.Parallelism)
	if err != nil {
		return nil, fmt.Errorf("experiments: personalize participants (%s): %w", m.Name, err)
	}
	outcome := &MethodOutcome{
		Method:  m.Name,
		Setting: env.Setting.Name,
		History: history,
		Global:  global,
		Participants: eval.MethodResult{
			Method: m.Name, Summary: eval.Summarize(part), Accs: part,
		},
	}
	if len(env.Novel) > 0 {
		novel, err := fl.PersonalizeAll(ctx, env.Seed, m, env.Novel, global, cfg.Parallelism)
		if err != nil {
			return nil, fmt.Errorf("experiments: personalize novel clients (%s): %w", m.Name, err)
		}
		outcome.Novel = eval.MethodResult{Method: m.Name, Summary: eval.Summarize(novel), Accs: novel}
	}
	return outcome, nil
}

// EncoderFor reconstructs the trained encoder of a method from its final
// global vector, abstracting over the supervised vs SSL parameter layouts.
// The returned FeatureFn maps raw observation batches to representation
// space; it powers the t-SNE figures and cluster-quality metrics.
func EncoderFor(env *Environment, methodName string, global param.Vector) (model.FeatureFn, error) {
	rng := rand.New(rand.NewSource(env.Seed + 99))
	switch {
	case strings.HasPrefix(methodName, "pfl-"), strings.HasPrefix(methodName, "calibre-"):
		sslName := methodName[strings.Index(methodName, "-")+1:]
		factory, err := ssl.Lookup(sslName)
		if err != nil {
			return nil, err
		}
		return sslEncoder(rng, env, factory, global)
	case methodName == "fedema":
		return sslEncoder(rng, env, ssl.NewBYOL(ssl.DefaultEMAMomentum), global)
	default:
		m := model.NewSupModel(rng, env.Arch, env.NumClasses)
		if err := nn.Unflatten(m, global); err != nil {
			return nil, fmt.Errorf("experiments: load %s encoder: %w", methodName, err)
		}
		return m.EncodeValue, nil
	}
}

func sslEncoder(rng *rand.Rand, env *Environment, factory ssl.Factory, global param.Vector) (model.FeatureFn, error) {
	backbone := ssl.NewBackbone(rng, env.Arch)
	method, err := factory(rng, backbone)
	if err != nil {
		return nil, err
	}
	st := &ssl.Trainable{Backbone: backbone, Method: method}
	if err := nn.Unflatten(st, global); err != nil {
		return nil, fmt.Errorf("experiments: load SSL encoder: %w", err)
	}
	return backbone.EncodeValue, nil
}

// ClientFeatures encodes (up to maxPerClient of) each selected client's
// training samples with fn and returns the pooled feature matrix, class
// labels and source client IDs.
func ClientFeatures(env *Environment, fn model.FeatureFn, clientIdx []int, maxPerClient int) (*tensor.Tensor, []int, []int, error) {
	var rows [][]float64
	var labels, owners []int
	for _, ci := range clientIdx {
		if ci < 0 || ci >= len(env.Participants) {
			return nil, nil, nil, fmt.Errorf("experiments: client index %d out of range", ci)
		}
		c := env.Participants[ci]
		n := c.Train.Len()
		if maxPerClient > 0 && n > maxPerClient {
			n = maxPerClient
		}
		for i := 0; i < n; i++ {
			rows = append(rows, c.Train.X[i])
			labels = append(labels, c.Train.Y[i])
			owners = append(owners, c.ID)
		}
	}
	if len(rows) == 0 {
		return nil, nil, nil, fmt.Errorf("experiments: no features collected")
	}
	batch := tensor.New(len(rows), len(rows[0]))
	for i, r := range rows {
		batch.SetRow(i, r)
	}
	return fn(batch), labels, owners, nil
}

// AblationVariant builds a Calibre method with specific regularizer
// switches for the Table I ablation.
func AblationVariant(env *Environment, sslName string, useLn, useLp bool) (*fl.Method, error) {
	cfg := core.DefaultConfig(env.Arch, sslName, env.NumClasses)
	cfg.Train.Epochs = 2 * env.Preset.LocalEpochs // same SSL budget as the registry methods
	cfg.Train.Augment = env.Augment
	cfg.Opts.WarmupRounds = warmupFor(env.Preset)
	cfg.Opts.UseLn = useLn
	cfg.Opts.UseLp = useLp
	m, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	suffix := map[[2]bool]string{
		{false, false}: "base",
		{true, false}:  "ln",
		{false, true}:  "lp",
		{true, true}:   "ln+lp",
	}[[2]bool{useLn, useLp}]
	m.Name = fmt.Sprintf("calibre-%s[%s]", sslName, suffix)
	return m, nil
}
