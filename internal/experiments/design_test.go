package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestDesignVariantNames(t *testing.T) {
	env, err := BuildEnvironment(settingCIFAR10Q(), ScaleSmoke, 31)
	if err != nil {
		t.Fatalf("BuildEnvironment: %v", err)
	}
	for _, variant := range []string{"full", "fixed-k", "no-gate", "no-filter", "no-warmup"} {
		m, err := DesignVariant(env, variant)
		if err != nil {
			t.Fatalf("DesignVariant(%s): %v", variant, err)
		}
		if !strings.Contains(m.Name, variant) {
			t.Fatalf("variant name = %s", m.Name)
		}
	}
	if _, err := DesignVariant(env, "bogus"); err == nil {
		t.Fatal("unknown variant should error")
	}
}

func TestRunDesignAblationSmoke(t *testing.T) {
	report, err := Run(context.Background(), "design", ScaleSmoke, 32)
	if err != nil {
		t.Fatalf("Run(design): %v", err)
	}
	if len(report.Settings) != 1 || len(report.Settings[0].Results) != 5 {
		t.Fatalf("design report shape: %d settings, %d results",
			len(report.Settings), len(report.Settings[0].Results))
	}
	for _, r := range report.Settings[0].Results {
		if r.Summary.Mean <= 0 || r.Summary.Mean > 1 {
			t.Fatalf("%s mean = %v", r.Method, r.Summary.Mean)
		}
	}
}

func TestVICRegRunsThroughPipeline(t *testing.T) {
	env, err := BuildEnvironment(settingCIFAR10Q(), ScaleSmoke, 33)
	if err != nil {
		t.Fatalf("BuildEnvironment: %v", err)
	}
	env.Novel = nil
	out, err := RunMethod(context.Background(), env, "calibre-vicreg")
	if err != nil {
		t.Fatalf("RunMethod(calibre-vicreg): %v", err)
	}
	if out.Participants.Summary.N != len(env.Participants) {
		t.Fatalf("N = %d", out.Participants.Summary.N)
	}
	// The SSL-encoder reconstruction path must handle the extension too.
	if _, err := EncoderFor(env, "calibre-vicreg", out.Global); err != nil {
		t.Fatalf("EncoderFor(calibre-vicreg): %v", err)
	}
}
