package experiments

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"

	"calibre/internal/tensor"
)

func TestPresetFor(t *testing.T) {
	for _, s := range []Scale{ScaleSmoke, ScaleCI, ScalePaper} {
		p, err := PresetFor(s)
		if err != nil {
			t.Fatalf("PresetFor(%s): %v", s, err)
		}
		if p.Clients < 1 || p.Rounds < 1 || p.ClientsPerRound < 1 {
			t.Fatalf("bad preset %+v", p)
		}
	}
	if _, err := PresetFor("nope"); err == nil {
		t.Fatal("unknown scale should error")
	}
	paper, err := PresetFor(ScalePaper)
	if err != nil {
		t.Fatalf("PresetFor(paper): %v", err)
	}
	// The paper's §V-A setup.
	if paper.Clients != 100 || paper.NovelClients != 50 || paper.Rounds != 200 || paper.ClientsPerRound != 10 || paper.LocalEpochs != 3 {
		t.Fatalf("paper preset diverges from §V-A: %+v", paper)
	}
}

func TestSettingsCoverPaper(t *testing.T) {
	s := Settings()
	for _, name := range []string{
		"cifar10-q(2,500)", "cifar100-q(5,500)", "stl10-q(2,46)",
		"stl10-d(0.3,80)", "cifar10-d(0.3,600)", "cifar100-d(0.3,500)",
	} {
		if _, ok := s[name]; !ok {
			t.Fatalf("missing setting %s", name)
		}
	}
	if s["cifar100-q(5,500)"].Spec.NumClasses != 100 {
		t.Fatal("cifar100 setting must have 100 classes")
	}
	if s["stl10-q(2,46)"].PaperUnlabeled != 100_000 {
		t.Fatal("stl10 must carry the 100k unlabeled pool")
	}
}

func TestBuildEnvironment(t *testing.T) {
	env, err := BuildEnvironment(settingCIFAR10Q(), ScaleSmoke, 1)
	if err != nil {
		t.Fatalf("BuildEnvironment: %v", err)
	}
	if len(env.Participants) != env.Preset.Clients || len(env.Novel) != env.Preset.NovelClients {
		t.Fatalf("client counts = %d/%d", len(env.Participants), len(env.Novel))
	}
	if env.Arch.InputDim != env.Preset.InputDim {
		t.Fatalf("arch input dim = %d", env.Arch.InputDim)
	}
	for _, c := range env.AllClients() {
		if c.Train.Len() == 0 || c.Test.Len() == 0 {
			t.Fatalf("client %d has empty split", c.ID)
		}
	}
	// STL-10 gets unlabeled pools.
	stl, err := BuildEnvironment(settingSTL10Q(), ScaleSmoke, 1)
	if err != nil {
		t.Fatalf("BuildEnvironment stl: %v", err)
	}
	if stl.Participants[0].Unlabeled == nil || stl.Participants[0].Unlabeled.Len() == 0 {
		t.Fatal("STL-10 clients must hold unlabeled data")
	}
	cif, err := BuildEnvironment(settingCIFAR10Q(), ScaleSmoke, 1)
	if err != nil {
		t.Fatalf("BuildEnvironment cifar: %v", err)
	}
	if cif.Participants[0].Unlabeled != nil {
		t.Fatal("CIFAR clients must not hold unlabeled data")
	}
}

func TestSamplesPerClientScaling(t *testing.T) {
	preset, err := PresetFor(ScalePaper)
	if err != nil {
		t.Fatalf("PresetFor: %v", err)
	}
	if got := settingCIFAR10Q().SamplesPerClient(preset); got != 500 {
		t.Fatalf("paper-scale samples = %d, want 500", got)
	}
	smoke, err := PresetFor(ScaleSmoke)
	if err != nil {
		t.Fatalf("PresetFor: %v", err)
	}
	got := settingCIFAR10Q().SamplesPerClient(smoke)
	if got < smoke.MinSamples {
		t.Fatalf("smoke samples = %d below floor", got)
	}
}

func TestRunMethodSmoke(t *testing.T) {
	env, err := BuildEnvironment(settingCIFAR10Q(), ScaleSmoke, 2)
	if err != nil {
		t.Fatalf("BuildEnvironment: %v", err)
	}
	env.Novel = env.Novel[:1]
	out, err := RunMethod(context.Background(), env, "fedavg-ft")
	if err != nil {
		t.Fatalf("RunMethod: %v", err)
	}
	if out.Participants.Summary.N != len(env.Participants) {
		t.Fatalf("participant N = %d", out.Participants.Summary.N)
	}
	if out.Novel.Summary.N != 1 {
		t.Fatalf("novel N = %d", out.Novel.Summary.N)
	}
	if len(out.History) != env.Preset.Rounds {
		t.Fatalf("history rounds = %d", len(out.History))
	}
}

func TestEncoderForEveryLayout(t *testing.T) {
	env, err := BuildEnvironment(settingCIFAR10Q(), ScaleSmoke, 3)
	if err != nil {
		t.Fatalf("BuildEnvironment: %v", err)
	}
	env.Novel = nil
	for _, name := range []string{"fedavg", "pfl-simclr", "calibre-swav", "fedema"} {
		name := name
		t.Run(name, func(t *testing.T) {
			m, err := BuildMethod(env, name)
			if err != nil {
				t.Fatalf("BuildMethod: %v", err)
			}
			rngInit, err := m.InitGlobal(rand.New(rand.NewSource(4)))
			if err != nil {
				t.Fatalf("InitGlobal: %v", err)
			}
			fn, err := EncoderFor(env, name, rngInit)
			if err != nil {
				t.Fatalf("EncoderFor: %v", err)
			}
			feats, labels, owners, err := ClientFeatures(env, fn, []int{0, 1}, 5)
			if err != nil {
				t.Fatalf("ClientFeatures: %v", err)
			}
			if feats.Rows() != len(labels) || len(labels) != len(owners) {
				t.Fatal("feature/label/owner misalignment")
			}
			if feats.Cols() != env.Arch.FeatDim {
				t.Fatalf("feature dim = %d, want %d", feats.Cols(), env.Arch.FeatDim)
			}
		})
	}
	if _, err := EncoderFor(env, "pfl-doesnotexist", nil); err == nil {
		t.Fatal("unknown SSL flavor should error")
	}
}

func TestClientFeaturesValidation(t *testing.T) {
	env, err := BuildEnvironment(settingCIFAR10Q(), ScaleSmoke, 5)
	if err != nil {
		t.Fatalf("BuildEnvironment: %v", err)
	}
	identity := func(x *tensor.Tensor) *tensor.Tensor { return x }
	if _, _, _, err := ClientFeatures(env, identity, []int{999}, 5); err == nil {
		t.Fatal("out-of-range client index should error")
	}
	if _, _, _, err := ClientFeatures(env, identity, nil, 5); err == nil {
		t.Fatal("no clients should error")
	}
}

func TestAblationVariantNames(t *testing.T) {
	env, err := BuildEnvironment(settingCIFAR10Q(), ScaleSmoke, 6)
	if err != nil {
		t.Fatalf("BuildEnvironment: %v", err)
	}
	m, err := AblationVariant(env, "simclr", true, false)
	if err != nil {
		t.Fatalf("AblationVariant: %v", err)
	}
	if m.Name != "calibre-simclr[ln]" {
		t.Fatalf("name = %s", m.Name)
	}
	m, err = AblationVariant(env, "swav", true, true)
	if err != nil {
		t.Fatalf("AblationVariant: %v", err)
	}
	if m.Name != "calibre-swav[ln+lp]" {
		t.Fatalf("name = %s", m.Name)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run(context.Background(), "fig99", ScaleSmoke, 1); err == nil {
		t.Fatal("unknown id should error")
	}
}

func TestRunFig1SmokeEndToEnd(t *testing.T) {
	report, err := Run(context.Background(), "fig1", ScaleSmoke, 7)
	if err != nil {
		t.Fatalf("Run(fig1): %v", err)
	}
	if len(report.Embeddings) != 2 {
		t.Fatalf("embeddings = %d", len(report.Embeddings))
	}
	for _, e := range report.Embeddings {
		if e.Points == nil || e.Points.Rows() == 0 {
			t.Fatal("missing t-SNE points")
		}
		if math.IsNaN(e.Silhouette) || math.IsNaN(e.Purity) {
			t.Fatal("non-finite representation metrics")
		}
	}
	text := report.String()
	if !strings.Contains(text, "pfl-simclr") || !strings.Contains(text, "silhouette") {
		t.Fatalf("report rendering incomplete:\n%s", text)
	}
}

func TestRunFig2HasCloseups(t *testing.T) {
	report, err := Run(context.Background(), "fig2", ScaleSmoke, 8)
	if err != nil {
		t.Fatalf("Run(fig2): %v", err)
	}
	for _, e := range report.Embeddings {
		if len(e.PerClient) == 0 {
			t.Fatalf("%s missing per-client close-ups", e.Method)
		}
		for _, c := range e.PerClient {
			if c.Accuracy < 0 || c.Accuracy > 1 {
				t.Fatalf("close-up accuracy = %v", c.Accuracy)
			}
		}
	}
}

func TestRunTable1Smoke(t *testing.T) {
	report, err := Run(context.Background(), "table1", ScaleSmoke, 9)
	if err != nil {
		t.Fatalf("Run(table1): %v", err)
	}
	if len(report.Ablation) != 4 {
		t.Fatalf("ablation rows = %d, want 4", len(report.Ablation))
	}
	for _, row := range report.Ablation {
		for _, v := range report.AblationVariants {
			s, ok := row.Results[v]
			if !ok {
				t.Fatalf("missing variant %s", v)
			}
			if s.Mean < 0 || s.Mean > 1 {
				t.Fatalf("ablation mean = %v", s.Mean)
			}
		}
	}
	if !strings.Contains(report.String(), "calibre-simclr") {
		t.Fatal("table rendering incomplete")
	}
}

func TestReportHelpers(t *testing.T) {
	report, err := Run(context.Background(), "fig1", ScaleSmoke, 10)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	sr := report.Settings[0]
	if _, ok := sr.BestByMean(); !ok {
		t.Fatal("BestByMean should find a method")
	}
	if _, ok := sr.Find("pfl-simclr"); !ok {
		t.Fatal("Find should locate pfl-simclr")
	}
	if _, ok := sr.Find("missing"); ok {
		t.Fatal("Find should miss unknown methods")
	}
	if _, ok := sr.FindNovel("missing"); ok {
		t.Fatal("FindNovel should miss on empty novel results")
	}
	var csv strings.Builder
	if err := WriteEmbeddingsCSV(&csv, report.Embeddings); err != nil {
		t.Fatalf("WriteEmbeddingsCSV: %v", err)
	}
	if !strings.Contains(csv.String(), "method,x,y,label,client") {
		t.Fatal("embeddings CSV header missing")
	}
	var rcsv strings.Builder
	if err := WriteResultsCSV(&rcsv, report); err != nil {
		t.Fatalf("WriteResultsCSV: %v", err)
	}
	if !strings.Contains(rcsv.String(), "participants") {
		t.Fatal("results CSV missing cohort rows")
	}
}
