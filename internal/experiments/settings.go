// Package experiments reproduces every table and figure of the paper's
// evaluation section. Each experiment is identified by the paper's label
// (fig1..fig8, table1) and can run at three scales (smoke/ci/paper); the
// paper scale matches §V-A's setup (100 clients + 50 novel, 200 rounds, 10
// clients per round), while smaller scales keep CI fast. See DESIGN.md §3
// for the experiment index and §5 for the scale table.
package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"calibre/internal/data"
	"calibre/internal/partition"
	"calibre/internal/ssl"
)

// Scale selects an experiment size preset.
type Scale string

// Supported scales.
const (
	ScaleSmoke Scale = "smoke"
	ScaleCI    Scale = "ci"
	ScalePaper Scale = "paper"
)

// Preset carries the concrete sizes for a scale.
type Preset struct {
	Clients         int
	NovelClients    int
	Rounds          int
	ClientsPerRound int
	// SampleFrac scales the paper's per-client sample counts.
	SampleFrac float64
	// MinSamples floors the scaled per-client count.
	MinSamples int
	// UnlabeledFrac scales the paper's unlabeled pool.
	UnlabeledFrac float64
	// InputDim overrides the dataset observation dimension (0 = spec's).
	InputDim int
	// LocalEpochs for the training stage (paper: 3).
	LocalEpochs int
}

// PresetFor returns the preset for a scale.
func PresetFor(s Scale) (Preset, error) {
	switch s {
	case ScaleSmoke:
		return Preset{
			Clients: 8, NovelClients: 4, Rounds: 4, ClientsPerRound: 3,
			SampleFrac: 0.1, MinSamples: 40, UnlabeledFrac: 0.002,
			InputDim: 16, LocalEpochs: 1,
		}, nil
	case ScaleCI:
		return Preset{
			Clients: 20, NovelClients: 10, Rounds: 40, ClientsPerRound: 5,
			SampleFrac: 0.25, MinSamples: 60, UnlabeledFrac: 0.05,
			InputDim: 32, LocalEpochs: 3,
		}, nil
	case ScalePaper:
		return Preset{
			Clients: 100, NovelClients: 50, Rounds: 200, ClientsPerRound: 10,
			SampleFrac: 1, MinSamples: 40, UnlabeledFrac: 1,
			InputDim: 64, LocalEpochs: 3,
		}, nil
	default:
		return Preset{}, fmt.Errorf("experiments: unknown scale %q (smoke|ci|paper)", s)
	}
}

// PartitionKind selects the non-i.i.d. scheme.
type PartitionKind int

// Partition kinds.
const (
	PartQuantity PartitionKind = iota + 1
	PartDirichlet
)

// Setting is one dataset + partition combination from the paper.
type Setting struct {
	Name string
	Spec data.Spec
	Kind PartitionKind
	// ClassesPerClient applies to quantity-based settings (S).
	ClassesPerClient int
	// DirichletAlpha applies to distribution-based settings.
	DirichletAlpha float64
	// PaperSamples is the per-client sample count the paper uses.
	PaperSamples int
	// PaperUnlabeled is the total unlabeled-pool size (STL-10: 100k).
	PaperUnlabeled int
	// TrainLabelNoise is the fraction of training labels flipped to a
	// random other class (annotation noise; test labels stay clean). See
	// DESIGN.md §1: this is part of the synthetic stand-in for real image
	// datasets' intrinsic label hardness.
	TrainLabelNoise float64
}

// defaultLabelNoise matches the ~aleatoric hardness of the CIFAR-scale
// datasets; applied identically across all settings and methods.
const defaultLabelNoise = 0.15

// The paper's six evaluation settings.
func settingCIFAR10Q() Setting {
	return Setting{Name: "cifar10-q(2,500)", Spec: data.CIFAR10Spec(), Kind: PartQuantity, ClassesPerClient: 2, PaperSamples: 500}
}
func settingCIFAR100Q() Setting {
	return Setting{Name: "cifar100-q(5,500)", Spec: data.CIFAR100Spec(), Kind: PartQuantity, ClassesPerClient: 5, PaperSamples: 500}
}
func settingSTL10Q() Setting {
	return Setting{Name: "stl10-q(2,46)", Spec: data.STL10Spec(), Kind: PartQuantity, ClassesPerClient: 2, PaperSamples: 46, PaperUnlabeled: 100_000}
}
func settingSTL10D() Setting {
	return Setting{Name: "stl10-d(0.3,80)", Spec: data.STL10Spec(), Kind: PartDirichlet, DirichletAlpha: 0.3, PaperSamples: 80, PaperUnlabeled: 100_000}
}
func settingCIFAR10D() Setting {
	return Setting{Name: "cifar10-d(0.3,600)", Spec: data.CIFAR10Spec(), Kind: PartDirichlet, DirichletAlpha: 0.3, PaperSamples: 600}
}
func settingCIFAR100D() Setting {
	return Setting{Name: "cifar100-d(0.3,500)", Spec: data.CIFAR100Spec(), Kind: PartDirichlet, DirichletAlpha: 0.3, PaperSamples: 500}
}

// Settings returns a named setting; see DESIGN.md §3 for which figures use
// which.
func Settings() map[string]Setting {
	out := map[string]Setting{}
	for _, s := range []Setting{
		settingCIFAR10Q(), settingCIFAR100Q(), settingSTL10Q(),
		settingSTL10D(), settingCIFAR10D(), settingCIFAR100D(),
	} {
		out[s.Name] = s
	}
	return out
}

// Environment is a fully materialized experiment world: generated data,
// partitioned clients, and the architecture every method shares.
type Environment struct {
	Setting Setting
	Preset  Preset
	Seed    int64

	Arch       ssl.Arch
	NumClasses int

	// Augment is the SSL augmentation pipeline, style-aware: it perturbs
	// the generator's nuisance-style subspace while preserving class cores
	// (the synthetic analogue of image augmentation).
	Augment data.Augmenter

	// Participants take part in federated training; Novel clients only
	// appear at personalization time (paper §V-D).
	Participants []*partition.Client
	Novel        []*partition.Client
}

// AllClients returns participants followed by novel clients.
func (e *Environment) AllClients() []*partition.Client {
	out := make([]*partition.Client, 0, len(e.Participants)+len(e.Novel))
	out = append(out, e.Participants...)
	out = append(out, e.Novel...)
	return out
}

// SamplesPerClient returns the scaled per-client sample count.
func (s Setting) SamplesPerClient(p Preset) int {
	n := int(math.Round(float64(s.PaperSamples) * p.SampleFrac))
	if n < p.MinSamples {
		n = p.MinSamples
	}
	// Quantity partitions need at least a handful of samples per class so
	// the local train/test split covers every local class.
	if s.Kind == PartQuantity && s.ClassesPerClient > 0 {
		if min := s.ClassesPerClient * 10; n < min {
			n = min
		}
	}
	return n
}

// BuildEnvironment generates the dataset, partitions clients (participants
// + novel) and fixes the shared architecture.
func BuildEnvironment(setting Setting, scale Scale, seed int64) (*Environment, error) {
	preset, err := PresetFor(scale)
	if err != nil {
		return nil, err
	}
	spec := setting.Spec
	if preset.InputDim > 0 {
		spec.Dim = preset.InputDim
	}
	gen, err := data.NewGenerator(spec, seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", setting.Name, err)
	}
	rng := rand.New(rand.NewSource(seed + 1))

	totalClients := preset.Clients + preset.NovelClients
	samples := setting.SamplesPerClient(preset)
	perClass := (totalClients*samples + spec.NumClasses - 1) / spec.NumClasses
	// Generate at least a modest pool per class; partitioners cycle when
	// clients outnumber unique samples (documented reuse).
	if perClass < 2*samples {
		perClass = 2 * samples
	}
	ds := gen.GenerateLabeled(rng, perClass)

	var assignments [][]int
	switch setting.Kind {
	case PartQuantity:
		assignments, err = partition.QuantityNonIID(rng, ds, totalClients, setting.ClassesPerClient, samples)
	case PartDirichlet:
		assignments, err = partition.DirichletNonIID(rng, ds, totalClients, setting.DirichletAlpha, samples)
	default:
		err = fmt.Errorf("experiments: unknown partition kind %d", setting.Kind)
	}
	if err != nil {
		return nil, fmt.Errorf("experiments: partition %s: %w", setting.Name, err)
	}
	var unlabeled *data.Dataset
	if setting.PaperUnlabeled > 0 {
		n := int(float64(setting.PaperUnlabeled) * preset.UnlabeledFrac)
		if n < totalClients*10 {
			n = totalClients * 10
		}
		unlabeled = gen.GenerateUnlabeled(rng, n)
	}
	clients := partition.BuildClients(rng, ds, assignments, unlabeled)
	noise := setting.TrainLabelNoise
	if noise == 0 {
		noise = defaultLabelNoise
	}
	if noise > 0 {
		partition.CorruptTrainLabels(rng, clients, noise, spec.NumClasses)
	}
	env := &Environment{
		Setting:      setting,
		Preset:       preset,
		Seed:         seed,
		Arch:         ssl.DefaultArch(spec.Dim),
		NumClasses:   spec.NumClasses,
		Augment:      gen.StyleAugmenter(),
		Participants: clients[:preset.Clients],
		Novel:        clients[preset.Clients:],
	}
	return env, nil
}
