package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry's two read-only views:
//
//	/metrics       JSON Snapshot
//	/metrics/prom  Prometheus text exposition
//
// Each request takes its own Snapshot, so concurrent scrapes never block
// each other or the training hot path.
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(reg.Snapshot())
	})
	mux.HandleFunc("/metrics/prom", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.Snapshot().WriteProm(w)
	})
	return mux
}

// Serve binds addr (host:port; port 0 picks a free one) and serves
// Handler(reg) in a background goroutine. The returned server supports
// graceful teardown via Shutdown; the returned address is the bound
// listener address, which callers print so scrapers and `calibre-sweep
// watch` know where to point.
func Serve(addr string, reg *Registry) (*http.Server, net.Addr, error) {
	return ServeHandler(addr, Handler(reg))
}

// ServeHandler binds addr (host:port; port 0 picks a free one) and serves
// an arbitrary handler in a background goroutine — the same lifecycle as
// Serve, for callers that wrap Handler(reg) with extra endpoints (the
// health plane's /healthz mounts this way without obs importing the
// detector layer).
func ServeHandler(addr string, h http.Handler) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: h}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr(), nil
}

// ServePprof binds addr and serves the net/http/pprof profiling suite
// (/debug/pprof/ index, profile, heap, goroutine, trace, …) in a
// background goroutine. It registers the handlers on a private mux — the
// pprof import's http.DefaultServeMux side effect is not relied on — so
// the profiling surface only exists on this listener, never on the
// metrics one. The calibre-server and calibre-sweep binaries expose it
// behind -pprof-addr.
func ServePprof(addr string) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr(), nil
}
