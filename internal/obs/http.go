package obs

import (
	"encoding/json"
	"net"
	"net/http"
)

// Handler serves the registry's two read-only views:
//
//	/metrics       JSON Snapshot
//	/metrics/prom  Prometheus text exposition
//
// Each request takes its own Snapshot, so concurrent scrapes never block
// each other or the training hot path.
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(reg.Snapshot())
	})
	mux.HandleFunc("/metrics/prom", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.Snapshot().WriteProm(w)
	})
	return mux
}

// Serve binds addr (host:port; port 0 picks a free one) and serves
// Handler(reg) in a background goroutine. The returned server supports
// graceful teardown via Shutdown; the returned address is the bound
// listener address, which callers print so scrapers and `calibre-sweep
// watch` know where to point.
func Serve(addr string, reg *Registry) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: Handler(reg)}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr(), nil
}
