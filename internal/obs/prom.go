package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// promPrefix namespaces every exported metric so a shared Prometheus
// server can tell calibre apart from its neighbors.
const promPrefix = "calibre_"

// WriteProm renders the snapshot in the Prometheus text exposition format
// (version 0.0.4): counters first, then gauges, then latency histograms
// (cumulative le-labeled buckets), then the per-client participation as
// one labeled counter family, then the latest round's mean loss as a
// float gauge. Ordering is fully deterministic (names sorted, clients
// numeric-sorted), so the output is golden-testable and scrape diffs are
// meaningful.
func (s Snapshot) WriteProm(w io.Writer) error {
	for _, name := range sortedKeys(s.Counters) {
		if _, err := fmt.Fprintf(w, "# TYPE %s%s counter\n%s%s %d\n", promPrefix, name, promPrefix, name, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if _, err := fmt.Fprintf(w, "# TYPE %s%s gauge\n%s%s %d\n", promPrefix, name, promPrefix, name, s.Gauges[name]); err != nil {
			return err
		}
	}
	if len(s.Histograms) > 0 {
		names := make([]string, 0, len(s.Histograms))
		for name := range s.Histograms {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if err := writePromHistogram(w, name, s.Histograms[name]); err != nil {
				return err
			}
		}
	}
	if len(s.Participation) > 0 {
		if _, err := fmt.Fprintf(w, "# TYPE %sclient_rounds_total counter\n", promPrefix); err != nil {
			return err
		}
		ids := make([]int, 0, len(s.Participation))
		for id := range s.Participation {
			n, err := strconv.Atoi(id)
			if err != nil {
				// Non-numeric IDs cannot occur from Registry.Snapshot;
				// skip rather than emit an unsortable label.
				continue
			}
			ids = append(ids, n)
		}
		sort.Ints(ids)
		for _, id := range ids {
			if _, err := fmt.Fprintf(w, "%sclient_rounds_total{client=\"%d\"} %d\n", promPrefix, id, s.Participation[strconv.Itoa(id)]); err != nil {
				return err
			}
		}
	}
	if last, ok := s.LastRound(); ok {
		if _, err := fmt.Fprintf(w, "# TYPE %sround_mean_loss gauge\n%sround_mean_loss %s\n",
			promPrefix, promPrefix, strconv.FormatFloat(last.MeanLoss, 'g', -1, 64)); err != nil {
			return err
		}
	}
	return nil
}

// writePromHistogram renders one histogram family: cumulative le-labeled
// buckets ending at +Inf, then _sum and _count, per the text format.
func writePromHistogram(w io.Writer, name string, h HistogramSnapshot) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s%s histogram\n", promPrefix, name); err != nil {
		return err
	}
	var cum int64
	for i, n := range h.Counts {
		cum += n
		le := "+Inf"
		if i < len(h.Bounds) {
			le = strconv.FormatInt(h.Bounds[i], 10)
		}
		if _, err := fmt.Fprintf(w, "%s%s_bucket{le=\"%s\"} %d\n", promPrefix, name, le, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s%s_sum %d\n%s%s_count %d\n",
		promPrefix, name, h.Sum, promPrefix, name, h.Count); err != nil {
		return err
	}
	return nil
}
