package obs

import (
	"container/list"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Canonical counter names the runtimes feed. Keeping them as constants
// means the JSON endpoint, the Prometheus encoder and `calibre-sweep
// watch` agree on spelling without a shared schema file.
const (
	// CounterRounds counts completed federated rounds (simulator and
	// server alike; sweeps accumulate across cells).
	CounterRounds = "rounds_total"
	// CounterResponders counts participants whose updates were aggregated.
	CounterResponders = "responders_total"
	// CounterStragglers counts participants whose updates were not
	// aggregated (deadline missed, dropped out, failed mid-round).
	CounterStragglers = "stragglers_total"
	// CounterLateUpdates counts stale straggler replies that drained
	// during later rounds' collection windows.
	CounterLateUpdates = "late_updates_total"
	// CounterDeadlineExpired counts rounds closed by their deadline with a
	// quorum rather than by every participant replying.
	CounterDeadlineExpired = "deadline_expired_total"
	// CounterUplinkWireBytes is the actual uplink payload cost: delta
	// bytes for delta-encoded updates, 8 bytes/element for dense ones.
	CounterUplinkWireBytes = "uplink_wire_bytes_total"
	// CounterAdversarialUpdates counts aggregated updates that came from
	// clients under adversarial control (the seeded compromise trace).
	CounterAdversarialUpdates = "adversarial_updates_total"
	// CounterRejectedUpdates counts updates a robust aggregator excluded
	// from the aggregate by construction (fl.RobustAggregator.Rejected).
	CounterRejectedUpdates = "aggregator_rejected_updates_total"
	// CounterUplinkDenseBytes is what the same updates would have cost
	// shipped dense — the baseline the delta wire is saving against.
	CounterUplinkDenseBytes = "uplink_dense_bytes_total"

	// CounterSweepCellsDone / CounterSweepCellsFailed count sweep cells by
	// outcome; CounterSweepCellsRestored counts cells a resume restored
	// from the manifest without re-running.
	CounterSweepCellsDone     = "sweep_cells_done_total"
	CounterSweepCellsFailed   = "sweep_cells_failed_total"
	CounterSweepCellsRestored = "sweep_cells_restored_total"

	// CounterHealthAlerts / CounterHealthCritical count health-plane alerts
	// raised by an attached health.Monitor, total and critical-severity
	// only. The runtimes (not the obs package) bump these, which keeps obs
	// free of a dependency on the detector layer.
	CounterHealthAlerts   = "health_alerts_total"
	CounterHealthCritical = "health_critical_alerts_total"
)

// Canonical gauge names.
const (
	// GaugeRound is the last completed round index.
	GaugeRound = "round"
	// GaugeSweepCellsPlanned / Pending / InFlight describe a running
	// sweep: the grid's total cell count, cells not yet finished in this
	// process, and cells currently executing.
	GaugeSweepCellsPlanned  = "sweep_cells_planned"
	GaugeSweepCellsPending  = "sweep_cells_pending"
	GaugeSweepCellsInFlight = "sweep_cells_in_flight"
	// GaugeHealthSuspects is the number of clients the attached
	// health.Monitor currently considers suspected adversaries.
	GaugeHealthSuspects = "health_suspect_clients"
)

// Canonical histogram names. All three record nanoseconds into the fixed
// latency buckets (see histBounds).
const (
	// HistRoundLatency is wall-clock per completed round.
	HistRoundLatency = "round_latency_ns"
	// HistClientTurnaround is dispatch→accepted-update per client span.
	HistClientTurnaround = "client_turnaround_ns"
	// HistUplinkEncode is the cost of encoding one client's uplink update
	// (delta diff or dense fallback).
	HistUplinkEncode = "uplink_encode_ns"
)

// roundWindow is the default bound on the per-round sample ring: a
// million-round run keeps live memory constant while the scraper still
// sees recent history. NewRegistryWithRing overrides it.
const roundWindow = 256

// clientWindow is the default bound on the per-client participation
// table: an LRU over client IDs, so a million-client federation keeps
// the hottest ~4096 participants visible at constant memory instead of
// growing one map entry per client ever seen. NewRegistryWithClients
// overrides it.
const clientWindow = 4096

// histBounds are the shared fixed latency bucket upper bounds in
// nanoseconds: 10µs, 100µs, 1ms, 10ms, 100ms, 1s, 10s, 100s, then +Inf.
// Fixed buckets keep Observe allocation-free and make scrapes from
// different processes directly comparable.
var histBounds = []int64{1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11}

// histBuckets is len(histBounds)+1: the finite buckets plus +Inf.
const histBuckets = 9

// Counter is a monotonically increasing metric. The zero value is usable;
// handles obtained from a Registry are shared and lock-free.
type Counter struct{ v atomic.Int64 }

// Add increments the counter; safe for concurrent use, no-op on nil.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a set-to-current-value metric.
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value; no-op on nil.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the gauge by n (negative to decrement); no-op on nil.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket latency histogram. Observations land in
// lock-free atomic buckets, so recording costs one linear scan over nine
// buckets plus three atomic adds — safe on the training hot path. The
// zero value is usable; handles from a Registry are shared.
type Histogram struct {
	counts [histBuckets]atomic.Int64 // finite buckets then +Inf
	sum    atomic.Int64
	count  atomic.Int64
}

// Observe records one value (nanoseconds by convention); no-op on nil.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(histBounds) && v > histBounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// HistogramSnapshot is a Histogram copied at one instant. Counts holds
// one entry per bucket (non-cumulative), the last being the +Inf bucket;
// Bounds holds the finite upper bounds.
type HistogramSnapshot struct {
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
	Sum    int64   `json:"sum"`
	Count  int64   `json:"count"`
}

// snapshot copies the histogram's current state.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: histBounds,
		Counts: make([]int64, len(h.counts)),
		Sum:    h.sum.Load(),
		Count:  h.count.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// ClientSample is one responder's contribution to a round as the health
// plane needs to see it: the client's local training loss and the L2 norm
// of its update against the round's pre-aggregation global model. The
// runtimes only populate these (on RoundSample.Clients) when a
// health.Monitor is attached — bare metrics scrapes stay as cheap as
// before.
type ClientSample struct {
	ID   int     `json:"id"`
	Loss float64 `json:"loss"`
	Norm float64 `json:"norm"`
}

// RoundSample is one completed round as the metrics plane sees it — the
// fl.RoundStats straggler accounting plus the wire-byte and wall-clock
// facts the runtimes know at round close.
type RoundSample struct {
	// Runtime names the producer: "sim" (fl.Simulator), "server"
	// (flnet.Server) or a sweep cell key prefix.
	Runtime string `json:"runtime"`
	// Round is the round index within its federation.
	Round int `json:"round"`
	// Participants, Responders and Stragglers are head-counts (the
	// participation table tracks per-client detail).
	Participants int `json:"participants"`
	Responders   int `json:"responders"`
	Stragglers   int `json:"stragglers"`
	// LateUpdates counts stale straggler replies drained this round.
	LateUpdates int `json:"late_updates,omitempty"`
	// DeadlineExpired reports a round closed by its deadline with quorum.
	DeadlineExpired bool `json:"deadline_expired,omitempty"`
	// AdversarialUpdates counts aggregated updates from compromised
	// clients; RejectedUpdates counts updates the round's robust
	// aggregator excluded by construction.
	AdversarialUpdates int `json:"adversarial_updates,omitempty"`
	RejectedUpdates    int `json:"rejected_updates,omitempty"`
	// MeanLoss is the round's mean local training loss.
	MeanLoss float64 `json:"mean_loss"`
	// Clients lists per-responder loss/update-norm detail in canonical
	// (dispatch) order; StragglerIDs and RejectedIDs name the round's
	// stragglers and robust-aggregator rejections. All three are only
	// populated when a health.Monitor is attached to the producing
	// runtime.
	Clients      []ClientSample `json:"clients,omitempty"`
	StragglerIDs []int          `json:"straggler_ids,omitempty"`
	RejectedIDs  []int          `json:"rejected_ids,omitempty"`
	// UplinkWireBytes is the actual uplink payload cost of the round;
	// UplinkDenseBytes what the same updates would cost shipped dense.
	UplinkWireBytes  int64 `json:"uplink_wire_bytes"`
	UplinkDenseBytes int64 `json:"uplink_dense_bytes"`
	// DurationMS is the round's wall-clock time. Observability only —
	// it never feeds back into training, which is what keeps
	// instrumented runs bit-identical to uninstrumented ones.
	DurationMS int64 `json:"duration_ms"`
}

// Registry is the process-local metrics hub. The zero value is not
// usable; build one with NewRegistry. All methods are safe for concurrent
// use and safe on a nil receiver (recording becomes a no-op), so runtime
// code instruments unconditionally.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	rounds     []RoundSample
	ringCap    int
	// participation is a bounded LRU over client IDs: the map indexes
	// list elements whose values are *partEntry, with the
	// most-recently-seen client at the list front. Touch order is the
	// canonical order ids arrive in AddParticipation calls, so eviction
	// is deterministic for deterministic runs.
	participation map[int]*list.Element
	partOrder     *list.List
	clientsCap    int
}

// partEntry is one client's row in the participation LRU.
type partEntry struct {
	id    int
	count int64
}

// NewRegistry returns an empty registry with the default 256-sample
// round ring and 4096-client participation table.
func NewRegistry() *Registry {
	return newRegistry(roundWindow, clientWindow)
}

// NewRegistryWithRing returns an empty registry whose round-sample ring
// keeps the last n samples (n < 1 falls back to the 256 default). Larger
// rings give scrapers deeper history at proportional memory cost; the
// counters and participation table are unaffected.
func NewRegistryWithRing(n int) *Registry {
	if n < 1 {
		n = roundWindow
	}
	return newRegistry(n, clientWindow)
}

// NewRegistryWithClients returns an empty registry whose per-client
// participation table keeps the n most-recently-seen clients (n < 1
// falls back to the 4096 default). When a federation exceeds the bound,
// the least-recently-participating client's row is evicted — aggregate
// counters are unaffected, only the per-client breakdown forgets cold
// clients.
func NewRegistryWithClients(n int) *Registry {
	if n < 1 {
		n = clientWindow
	}
	return newRegistry(roundWindow, n)
}

func newRegistry(ring, clients int) *Registry {
	return &Registry{
		counters:      make(map[string]*Counter),
		gauges:        make(map[string]*Gauge),
		histograms:    make(map[string]*Histogram),
		ringCap:       ring,
		participation: make(map[int]*list.Element),
		partOrder:     list.New(),
		clientsCap:    clients,
	}
}

// Counter returns the named counter handle, creating it on first use.
// Returns nil (a usable no-op handle) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge handle, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram handle, creating it on first
// use. Returns nil (a usable no-op handle) on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// ObserveRound records one completed round: it appends the sample to the
// bounded ring and folds its facts into the aggregate counters and the
// round gauge, all under one lock so a concurrent Snapshot never sees a
// half-recorded round.
func (r *Registry) ObserveRound(s RoundSample) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	window := r.ringCap
	if window < 1 {
		window = roundWindow
	}
	r.rounds = append(r.rounds, s)
	if len(r.rounds) > window {
		r.rounds = r.rounds[len(r.rounds)-window:]
	}
	r.counterLocked(CounterRounds).Add(1)
	r.counterLocked(CounterResponders).Add(int64(s.Responders))
	r.counterLocked(CounterStragglers).Add(int64(s.Stragglers))
	r.counterLocked(CounterLateUpdates).Add(int64(s.LateUpdates))
	var expired int64
	if s.DeadlineExpired {
		expired = 1
	}
	r.counterLocked(CounterDeadlineExpired).Add(expired)
	r.counterLocked(CounterAdversarialUpdates).Add(int64(s.AdversarialUpdates))
	r.counterLocked(CounterRejectedUpdates).Add(int64(s.RejectedUpdates))
	r.counterLocked(CounterUplinkWireBytes).Add(s.UplinkWireBytes)
	r.counterLocked(CounterUplinkDenseBytes).Add(s.UplinkDenseBytes)
	r.gaugeLocked(GaugeRound).Set(int64(s.Round))
}

// AddParticipation bumps the per-client participation count for every id
// (one round each) and marks each id most-recently-seen in the bounded
// LRU; when the table exceeds its client cap the least-recently-seen
// rows are evicted.
func (r *Registry) AddParticipation(ids []int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, id := range ids {
		if el, ok := r.participation[id]; ok {
			el.Value.(*partEntry).count++
			r.partOrder.MoveToFront(el)
			continue
		}
		r.participation[id] = r.partOrder.PushFront(&partEntry{id: id, count: 1})
	}
	cap := r.clientsCap
	if cap < 1 {
		cap = clientWindow
	}
	for len(r.participation) > cap {
		back := r.partOrder.Back()
		delete(r.participation, back.Value.(*partEntry).id)
		r.partOrder.Remove(back)
	}
}

// counterLocked / gaugeLocked are the get-or-create paths for callers
// already holding r.mu.
func (r *Registry) counterLocked(name string) *Counter {
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

func (r *Registry) gaugeLocked(name string) *Gauge {
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Snapshot is a consistent copy of a Registry at one instant — what the
// JSON endpoint serves and the Prometheus encoder renders. Maps are fresh
// copies; mutating a snapshot never touches the registry.
type Snapshot struct {
	Counters map[string]int64 `json:"counters"`
	Gauges   map[string]int64 `json:"gauges,omitempty"`
	// Histograms maps histogram name to its bucketed state.
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	// Rounds is the recent-round ring in chronological order.
	Rounds []RoundSample `json:"rounds,omitempty"`
	// Participation maps client ID (stringified for JSON) to the number
	// of rounds the client's update was aggregated in.
	Participation map[string]int64 `json:"participation,omitempty"`
}

// Snapshot copies the registry's state under one lock acquisition. A nil
// registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{Counters: map[string]int64{}}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := Snapshot{Counters: make(map[string]int64, len(r.counters))}
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	if len(r.gauges) > 0 {
		snap.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			snap.Gauges[name] = g.Value()
		}
	}
	if len(r.histograms) > 0 {
		snap.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for name, h := range r.histograms {
			snap.Histograms[name] = h.snapshot()
		}
	}
	if len(r.rounds) > 0 {
		snap.Rounds = append([]RoundSample(nil), r.rounds...)
	}
	if len(r.participation) > 0 {
		snap.Participation = make(map[string]int64, len(r.participation))
		for id, el := range r.participation {
			snap.Participation[strconv.Itoa(id)] = el.Value.(*partEntry).count
		}
	}
	return snap
}

// LastRound returns the most recent round sample, or false when none has
// been recorded.
func (s Snapshot) LastRound() (RoundSample, bool) {
	if len(s.Rounds) == 0 {
		return RoundSample{}, false
	}
	return s.Rounds[len(s.Rounds)-1], true
}

// sortedKeys returns m's keys in ascending order — the deterministic
// iteration the Prometheus encoder and tests rely on.
func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
