package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(3)
	r.Gauge("y").Set(7)
	r.ObserveRound(RoundSample{Round: 1})
	r.AddParticipation([]int{1, 2})
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Rounds) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
	if _, ok := snap.LastRound(); ok {
		t.Fatal("nil registry reported a last round")
	}
}

func TestObserveRoundAggregates(t *testing.T) {
	r := NewRegistry()
	r.ObserveRound(RoundSample{
		Runtime: "sim", Round: 0, Participants: 4, Responders: 3, Stragglers: 1,
		UplinkWireBytes: 100, UplinkDenseBytes: 800, MeanLoss: 2.5,
	})
	r.ObserveRound(RoundSample{
		Runtime: "sim", Round: 1, Participants: 4, Responders: 4,
		LateUpdates: 1, DeadlineExpired: true,
		UplinkWireBytes: 50, UplinkDenseBytes: 800, MeanLoss: 1.25,
	})
	r.AddParticipation([]int{0, 1, 2})
	r.AddParticipation([]int{0, 1, 2, 3})

	snap := r.Snapshot()
	want := map[string]int64{
		CounterRounds:           2,
		CounterResponders:       7,
		CounterStragglers:       1,
		CounterLateUpdates:      1,
		CounterDeadlineExpired:  1,
		CounterUplinkWireBytes:  150,
		CounterUplinkDenseBytes: 1600,
	}
	for name, n := range want {
		if got := snap.Counters[name]; got != n {
			t.Errorf("counter %s = %d, want %d", name, got, n)
		}
	}
	if got := snap.Gauges[GaugeRound]; got != 1 {
		t.Errorf("gauge round = %d, want 1", got)
	}
	if len(snap.Rounds) != 2 {
		t.Fatalf("rounds ring len = %d, want 2", len(snap.Rounds))
	}
	last, ok := snap.LastRound()
	if !ok || last.Round != 1 || last.MeanLoss != 1.25 {
		t.Fatalf("last round = %+v, ok=%v", last, ok)
	}
	if snap.Participation["0"] != 2 || snap.Participation["3"] != 1 {
		t.Fatalf("participation = %v", snap.Participation)
	}
}

func TestRoundRingBounded(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < roundWindow+10; i++ {
		r.ObserveRound(RoundSample{Round: i})
	}
	snap := r.Snapshot()
	if len(snap.Rounds) != roundWindow {
		t.Fatalf("ring len = %d, want %d", len(snap.Rounds), roundWindow)
	}
	if snap.Rounds[0].Round != 10 || snap.Rounds[len(snap.Rounds)-1].Round != roundWindow+9 {
		t.Fatalf("ring window wrong: first=%d last=%d",
			snap.Rounds[0].Round, snap.Rounds[len(snap.Rounds)-1].Round)
	}
	if snap.Counters[CounterRounds] != int64(roundWindow+10) {
		t.Fatalf("rounds_total = %d, want %d", snap.Counters[CounterRounds], roundWindow+10)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(1)
	r.AddParticipation([]int{5})
	snap := r.Snapshot()
	snap.Counters["c"] = 99
	snap.Participation["5"] = 99
	if got := r.Snapshot().Counters["c"]; got != 1 {
		t.Fatalf("mutating snapshot leaked into registry: %d", got)
	}
	if got := r.Snapshot().Participation["5"]; got != 1 {
		t.Fatalf("mutating snapshot participation leaked: %d", got)
	}
}

// TestPromGolden pins the exact Prometheus text encoding: deterministic
// ordering is part of the contract.
func TestPromGolden(t *testing.T) {
	r := NewRegistry()
	r.ObserveRound(RoundSample{
		Runtime: "sim", Round: 0, Participants: 3, Responders: 2, Stragglers: 1,
		UplinkWireBytes: 40, UplinkDenseBytes: 160, MeanLoss: 0.5,
	})
	r.AddParticipation([]int{10, 2, 2})
	r.Gauge(GaugeSweepCellsInFlight).Set(1)

	var b strings.Builder
	if err := r.Snapshot().WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE calibre_adversarial_updates_total counter
calibre_adversarial_updates_total 0
# TYPE calibre_aggregator_rejected_updates_total counter
calibre_aggregator_rejected_updates_total 0
# TYPE calibre_deadline_expired_total counter
calibre_deadline_expired_total 0
# TYPE calibre_late_updates_total counter
calibre_late_updates_total 0
# TYPE calibre_responders_total counter
calibre_responders_total 2
# TYPE calibre_rounds_total counter
calibre_rounds_total 1
# TYPE calibre_stragglers_total counter
calibre_stragglers_total 1
# TYPE calibre_uplink_dense_bytes_total counter
calibre_uplink_dense_bytes_total 160
# TYPE calibre_uplink_wire_bytes_total counter
calibre_uplink_wire_bytes_total 40
# TYPE calibre_round gauge
calibre_round 0
# TYPE calibre_sweep_cells_in_flight gauge
calibre_sweep_cells_in_flight 1
# TYPE calibre_client_rounds_total counter
calibre_client_rounds_total{client="2"} 2
calibre_client_rounds_total{client="10"} 1
# TYPE calibre_round_mean_loss gauge
calibre_round_mean_loss 0.5
`
	if got := b.String(); got != want {
		t.Errorf("prometheus text mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestHandlerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.ObserveRound(RoundSample{Runtime: "sim", Round: 3, Responders: 2, MeanLoss: 1})
	srv, addr, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode /metrics: %v", err)
	}
	resp.Body.Close()
	if snap.Counters[CounterRounds] != 1 || snap.Gauges[GaugeRound] != 3 {
		t.Fatalf("unexpected snapshot over HTTP: %+v", snap)
	}

	resp, err = http.Get("http://" + addr.String() + "/metrics/prom")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "calibre_rounds_total 1") {
		t.Fatalf("prom endpoint missing rounds counter:\n%s", body)
	}
}

// TestConcurrentSnapshot hammers Snapshot from scraper goroutines while
// writers record rounds and counters — the registry-local half of the
// race-freedom contract (the flnet-integrated half lives in flnet).
func TestConcurrentSnapshot(t *testing.T) {
	r := NewRegistry()
	const writers, scrapes = 4, 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				r.ObserveRound(RoundSample{Runtime: "sim", Round: i, Responders: w})
				r.Counter("extra").Add(1)
				r.AddParticipation([]int{w, i % 8})
				i++
			}
		}(w)
	}
	for i := 0; i < scrapes; i++ {
		snap := r.Snapshot()
		if int64(len(snap.Rounds)) > snap.Counters[CounterRounds] {
			t.Fatalf("snapshot inconsistent: ring %d > rounds_total %d",
				len(snap.Rounds), snap.Counters[CounterRounds])
		}
	}
	close(stop)
	wg.Wait()
}

func ExampleRegistry_Snapshot() {
	r := NewRegistry()
	r.ObserveRound(RoundSample{Runtime: "sim", Round: 0, Participants: 2, Responders: 2, MeanLoss: 0.25})
	snap := r.Snapshot()
	fmt.Println("rounds:", snap.Counters[CounterRounds])
	last, _ := snap.LastRound()
	fmt.Println("responders:", last.Responders)
	// Output:
	// rounds: 1
	// responders: 2
}

func ExampleSnapshot_WriteProm() {
	r := NewRegistry()
	r.Counter(CounterRounds).Add(2)
	var b strings.Builder
	_ = r.Snapshot().WriteProm(&b)
	fmt.Print(b.String())
	// Output:
	// # TYPE calibre_rounds_total counter
	// calibre_rounds_total 2
}
