package obs

import "testing"

func TestParticipationLRUBound(t *testing.T) {
	r := NewRegistryWithClients(3)
	r.AddParticipation([]int{1, 2, 3})
	r.AddParticipation([]int{1, 2, 3})
	snap := r.Snapshot()
	if len(snap.Participation) != 3 || snap.Participation["2"] != 2 {
		t.Fatalf("participation = %v", snap.Participation)
	}
	// Client 4 arrives: least-recently-seen (1, touched first within each
	// call) is evicted; survivors keep their counts.
	r.AddParticipation([]int{4})
	snap = r.Snapshot()
	if len(snap.Participation) != 3 {
		t.Fatalf("table exceeded bound: %v", snap.Participation)
	}
	if _, ok := snap.Participation["1"]; ok {
		t.Fatalf("expected client 1 evicted: %v", snap.Participation)
	}
	if snap.Participation["3"] != 2 || snap.Participation["4"] != 1 {
		t.Fatalf("counts wrong after eviction: %v", snap.Participation)
	}
	// Touching a resident client refreshes its recency.
	r.AddParticipation([]int{2})
	r.AddParticipation([]int{5})
	snap = r.Snapshot()
	if _, ok := snap.Participation["3"]; ok {
		t.Fatalf("expected client 3 evicted (2 was refreshed): %v", snap.Participation)
	}
	if snap.Participation["2"] != 3 {
		t.Fatalf("refreshed client lost its count: %v", snap.Participation)
	}
}

func TestParticipationDefaultBound(t *testing.T) {
	r := NewRegistry()
	ids := make([]int, 5000)
	for i := range ids {
		ids[i] = i
	}
	r.AddParticipation(ids)
	snap := r.Snapshot()
	if len(snap.Participation) != 4096 {
		t.Fatalf("default bound = %d, want 4096", len(snap.Participation))
	}
	// The oldest (lowest) ids were evicted, the newest retained.
	if _, ok := snap.Participation["0"]; ok {
		t.Fatal("client 0 should have been evicted")
	}
	if snap.Participation["4999"] != 1 {
		t.Fatal("newest client missing")
	}
}

func TestNewRegistryWithClientsFallback(t *testing.T) {
	r := NewRegistryWithClients(0)
	if r.clientsCap != 4096 {
		t.Fatalf("clientsCap = %d, want default", r.clientsCap)
	}
}
