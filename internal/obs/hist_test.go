package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestHistogramObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(HistRoundLatency)
	for _, v := range []int64{5_000, 50_000, 50_000, 2_000_000_000, 1 << 62} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	hs, ok := snap.Histograms[HistRoundLatency]
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	if hs.Count != 5 {
		t.Fatalf("count = %d, want 5", hs.Count)
	}
	if hs.Sum != 5_000+50_000+50_000+2_000_000_000+(1<<62) {
		t.Fatalf("sum = %d", hs.Sum)
	}
	// 5µs → bucket 0 (≤10µs); 50µs ×2 → bucket 1 (≤100µs); 2s → bucket 6
	// (≤10s); huge → +Inf bucket (last).
	want := []int64{1, 2, 0, 0, 0, 0, 1, 0, 1}
	if len(hs.Counts) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(hs.Counts), len(want))
	}
	for i, n := range want {
		if hs.Counts[i] != n {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, hs.Counts[i], n, hs.Counts)
		}
	}
	if len(hs.Bounds) != len(hs.Counts)-1 {
		t.Fatalf("bounds %d vs counts %d", len(hs.Bounds), len(hs.Counts))
	}
}

func TestHistogramBoundaryValuesInclusive(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x")
	h.Observe(10_000) // exactly the first bound: le is inclusive
	h.Observe(10_001) // just over: next bucket
	hs := r.Snapshot().Histograms["x"]
	if hs.Counts[0] != 1 || hs.Counts[1] != 1 {
		t.Fatalf("boundary bucketing wrong: %v", hs.Counts)
	}
}

func TestNilHistogramSafe(t *testing.T) {
	var r *Registry
	r.Histogram(HistUplinkEncode).Observe(5)
	var h *Histogram
	h.Observe(5)
	if len(r.Snapshot().Histograms) != 0 {
		t.Fatal("nil registry grew a histogram")
	}
}

func TestHistogramPromRendering(t *testing.T) {
	r := NewRegistry()
	r.Histogram(HistUplinkEncode).Observe(50_000)
	r.Histogram(HistUplinkEncode).Observe(3_000_000)
	var b strings.Builder
	if err := r.Snapshot().WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := `# TYPE calibre_uplink_encode_ns histogram
calibre_uplink_encode_ns_bucket{le="10000"} 0
calibre_uplink_encode_ns_bucket{le="100000"} 1
calibre_uplink_encode_ns_bucket{le="1000000"} 1
calibre_uplink_encode_ns_bucket{le="10000000"} 2
calibre_uplink_encode_ns_bucket{le="100000000"} 2
calibre_uplink_encode_ns_bucket{le="1000000000"} 2
calibre_uplink_encode_ns_bucket{le="10000000000"} 2
calibre_uplink_encode_ns_bucket{le="100000000000"} 2
calibre_uplink_encode_ns_bucket{le="+Inf"} 2
calibre_uplink_encode_ns_sum 3050000
calibre_uplink_encode_ns_count 2
`
	if !strings.Contains(got, want) {
		t.Errorf("prom histogram block missing or wrong:\n--- got ---\n%s\n--- want fragment ---\n%s", got, want)
	}
}

func TestHistogramSnapshotIsolation(t *testing.T) {
	r := NewRegistry()
	r.Histogram("x").Observe(1)
	snap := r.Snapshot()
	snap.Histograms["x"].Counts[0] = 99
	if got := r.Snapshot().Histograms["x"].Counts[0]; got != 1 {
		t.Fatalf("mutating snapshot histogram leaked into registry: %d", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := r.Histogram(HistClientTurnaround)
			for i := 0; i < per; i++ {
				h.Observe(int64(i) * 1000)
			}
		}()
	}
	for i := 0; i < 50; i++ {
		_ = r.Snapshot()
	}
	wg.Wait()
	hs := r.Snapshot().Histograms[HistClientTurnaround]
	if hs.Count != workers*per {
		t.Fatalf("count = %d, want %d", hs.Count, workers*per)
	}
	var total int64
	for _, n := range hs.Counts {
		total += n
	}
	if total != hs.Count {
		t.Fatalf("bucket total %d != count %d", total, hs.Count)
	}
}

func TestRegistryWithRing(t *testing.T) {
	r := NewRegistryWithRing(8)
	for i := 0; i < 20; i++ {
		r.ObserveRound(RoundSample{Round: i})
	}
	snap := r.Snapshot()
	if len(snap.Rounds) != 8 {
		t.Fatalf("custom ring len = %d, want 8", len(snap.Rounds))
	}
	if snap.Rounds[0].Round != 12 || snap.Rounds[7].Round != 19 {
		t.Fatalf("custom ring window wrong: %+v", snap.Rounds)
	}
	if snap.Counters[CounterRounds] != 20 {
		t.Fatalf("rounds_total = %d", snap.Counters[CounterRounds])
	}
	if got := len(NewRegistryWithRing(0).rounds); got != 0 {
		t.Fatalf("unexpected preallocation: %d", got)
	}
	// n < 1 falls back to the 256 default.
	rd := NewRegistryWithRing(-3)
	for i := 0; i < roundWindow+5; i++ {
		rd.ObserveRound(RoundSample{Round: i})
	}
	if got := len(rd.Snapshot().Rounds); got != roundWindow {
		t.Fatalf("fallback ring len = %d, want %d", got, roundWindow)
	}
}
