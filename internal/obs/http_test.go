package obs

import (
	"context"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestHandlerUnknownRoute404(t *testing.T) {
	srv, addr, err := Serve("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, path := range []string{"/", "/metrics/unknown/deeper", "/debug/pprof/"} {
		resp, err := http.Get("http://" + addr.String() + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestHandlerHead(t *testing.T) {
	r := NewRegistry()
	r.ObserveRound(RoundSample{Runtime: "sim", Round: 1, Responders: 2})
	srv, addr, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, path := range []string{"/metrics", "/metrics/prom"} {
		resp, err := http.Head("http://" + addr.String() + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("HEAD %s = %d, want 200", path, resp.StatusCode)
		}
		if len(body) != 0 {
			t.Errorf("HEAD %s returned a body (%d bytes)", path, len(body))
		}
	}
}

// TestHandlerUnderHammer scrapes both endpoints while writers pound
// counters, rounds and histograms — run under -race in CI, this is the
// HTTP half of the concurrency contract.
func TestHandlerUnderHammer(t *testing.T) {
	r := NewRegistry()
	srv, addr, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				r.Counter(CounterResponders).Add(1)
				r.ObserveRound(RoundSample{Runtime: "sim", Round: i, Responders: w})
				r.Histogram(HistRoundLatency).Observe(int64(i))
				r.AddParticipation([]int{w, i % 5})
				i++
			}
		}(w)
	}
	for i := 0; i < 25; i++ {
		for _, path := range []string{"/metrics", "/metrics/prom"} {
			resp, err := http.Get("http://" + addr.String() + path)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := io.ReadAll(resp.Body); err != nil {
				t.Fatalf("read %s under hammer: %v", path, err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("GET %s = %d under hammer", path, resp.StatusCode)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestServeDoubleShutdown(t *testing.T) {
	srv, addr, err := Serve("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("first shutdown: %v", err)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("second shutdown must be a clean no-op: %v", err)
	}
	if _, err := http.Get("http://" + addr.String() + "/metrics"); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}

func TestServePprof(t *testing.T) {
	srv, addr, err := ServePprof("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr.String() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof index: status %d body %q", resp.StatusCode, body)
	}
	resp, err = http.Get("http://" + addr.String() + "/debug/pprof/heap?debug=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof heap = %d, want 200", resp.StatusCode)
	}
	// The metrics surface must not exist on the profiling listener.
	resp, err = http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof listener served /metrics: %d", resp.StatusCode)
	}
}
