// Package obs is the live observability plane for the federation
// runtimes: a stdlib-only, snapshot-consistent metrics registry that both
// the in-process simulator (fl), the TCP server (flnet) and the sweep
// scheduler (sweep) feed while they run, exported over HTTP so a long
// federation is steerable while it executes instead of only post-mortem.
//
// # Registry
//
// A Registry holds three kinds of state:
//
//   - named monotonic counters (rounds_total, uplink_wire_bytes_total, …)
//   - named gauges (round, sweep_cells_in_flight, …)
//   - named fixed-bucket latency histograms (round_latency_ns,
//     client_turnaround_ns, uplink_encode_ns) with nine shared
//     nanosecond buckets from 10µs to 100s plus +Inf
//   - a bounded ring of per-round samples (RoundSample: straggler/quorum
//     accounting from fl.RoundStats, uplink bytes dense-vs-delta, round
//     wall-clock), plus a per-client participation table
//
// The round ring keeps the most recent 256 samples by default — enough
// recent history for a scraper while a million-round run holds live
// memory constant. NewRegistryWithRing(n) widens or narrows the window;
// counters, histograms and the participation table are unbounded-by-name
// and unaffected by the ring size.
//
// Counter and Gauge handles are lock-free atomics once obtained, so the
// training hot path never blocks on a scraper: instrumentation costs one
// atomic add, and Snapshot takes a short mutex only to copy the ring and
// the name tables. Snapshot returns a fully consistent copy — every
// counter, gauge and sample in it was observed under one lock acquisition
// — and is safe to call from any goroutine at any rate (pinned by a
// -race test hammering Snapshot during concurrent flnet rounds).
//
// Every Registry method is nil-receiver-safe: runtimes instrument
// unconditionally and a federation without observability attached pays a
// single predictable-branch nil check. Instrumentation never perturbs
// results — a simulation with a live Registry attached is bit-identical
// to one without (pinned by a test in fl).
//
// # Endpoints
//
// Handler serves two read-only views of a Registry:
//
//	/metrics       the JSON Snapshot (counters, gauges, round ring,
//	               participation)
//	/metrics/prom  a Prometheus text-format rendering of the same
//	               snapshot (deterministic ordering, golden-tested)
//
// Serve binds a listener and serves Handler in the background; the
// calibre-server and calibre-sweep binaries expose it behind their
// -metrics-addr flags, and `calibre-sweep watch` polls the JSON view to
// render live cell/round progress. ServePprof serves the net/http/pprof
// profiling suite on a separate listener (-pprof-addr on the same
// binaries), kept apart from the metrics surface on purpose.
package obs
