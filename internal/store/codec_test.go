package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"calibre/internal/fl"
	"calibre/internal/tensor"
)

// specialFloats are the payloads a lossless codec must not disturb: NaN
// (including a non-standard payload), infinities, signed zero, denormals
// and extreme magnitudes.
var specialFloats = []float64{
	math.NaN(),
	math.Float64frombits(0x7ff8dead_beef0001), // NaN with payload bits
	math.Inf(1), math.Inf(-1),
	0, math.Copysign(0, -1),
	math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
	math.MaxFloat64, -math.MaxFloat64,
	1.0 / 3.0, -math.Pi,
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func TestVectorRoundTripBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := make([]float64, 0, 512)
	v = append(v, specialFloats...)
	for len(v) < cap(v) {
		v = append(v, rng.NormFloat64()*math.Pow(10, float64(rng.Intn(40)-20)))
	}
	blob := EncodeVector(v)
	got, err := DecodeVector(blob)
	if err != nil {
		t.Fatalf("DecodeVector: %v", err)
	}
	if !bitsEqual(got, v) {
		t.Fatal("vector round trip is not 0-ULP identical")
	}
	if again := EncodeVector(v); !bytes.Equal(blob, again) {
		t.Fatal("encoding the same vector twice is not byte-identical")
	}
}

// TestVectorRoundTripProperty drives the round trip with machine-generated
// vectors (testing/quick fills them with adversarial bit patterns).
func TestVectorRoundTripProperty(t *testing.T) {
	prop := func(v []float64) bool {
		got, err := DecodeVector(EncodeVector(v))
		if err != nil {
			return false
		}
		return bitsEqual(got, v)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTensorsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ts := []*tensor.Tensor{
		tensor.New(), // 0-dim scalar holder (1 element)
		tensor.RandN(rng, 1, 7),
		tensor.RandN(rng, 1, 3, 5),
		tensor.RandN(rng, 1, 2, 3, 4),
		tensor.New(0, 4), // zero-element tensor with shape
	}
	ts[1].Data()[0] = math.NaN()
	ts[2].Data()[3] = math.Inf(-1)

	blob := EncodeTensors(ts)
	got, err := DecodeTensors(blob)
	if err != nil {
		t.Fatalf("DecodeTensors: %v", err)
	}
	if len(got) != len(ts) {
		t.Fatalf("decoded %d tensors, want %d", len(got), len(ts))
	}
	for i := range ts {
		if !reflect.DeepEqual(got[i].Shape(), ts[i].Shape()) {
			t.Fatalf("tensor %d shape %v, want %v", i, got[i].Shape(), ts[i].Shape())
		}
		if !bitsEqual(got[i].Data(), ts[i].Data()) {
			t.Fatalf("tensor %d payload not bit-identical", i)
		}
	}
	if again := EncodeTensors(ts); !bytes.Equal(blob, again) {
		t.Fatal("tensor encoding is not deterministic")
	}
}

// testSnapshot builds a snapshot exercising every field the codec must
// preserve, including nil-vs-empty distinctions in the history.
func testSnapshot() *Snapshot {
	return &Snapshot{
		Meta: Meta{Seed: -42, Fingerprint: "deadbeef01234567", Runtime: "server"},
		State: fl.SimState{
			Round:  3,
			Global: []float64{1.5, -2.25, math.Pi, 0},
			History: []fl.RoundStats{
				{Round: 0, Participants: []int{0, 1, 2}, MeanLoss: 0.75},
				{Round: 1, Participants: []int{1, 3}, MeanLoss: 1.0 / 3.0,
					Responders: []int{1}, Stragglers: []int{3}, DeadlineExpired: true},
				{Round: 2, Participants: []int{0, 2}, MeanLoss: 0.5, LateUpdates: 2,
					Responders: []int{}},
			},
			EligibleCounts: []int{4, 4, 3},
		},
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	snap := testSnapshot()
	blob, err := EncodeSnapshot(snap)
	if err != nil {
		t.Fatalf("EncodeSnapshot: %v", err)
	}
	got, err := DecodeSnapshot(blob)
	if err != nil {
		t.Fatalf("DecodeSnapshot: %v", err)
	}
	if !reflect.DeepEqual(got, snap) {
		t.Fatalf("snapshot round trip differs:\n%+v\nvs\n%+v", got, snap)
	}
	again, err := EncodeSnapshot(snap)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(blob, again) {
		t.Fatal("snapshot encoding is not deterministic")
	}
}

// TestSnapshotNaNLoss: the binary history section must carry a NaN
// MeanLoss losslessly (a JSON-based history could not).
func TestSnapshotNaNLoss(t *testing.T) {
	snap := testSnapshot()
	snap.State.History[0].MeanLoss = math.Float64frombits(0x7ff8000000000042)
	blob, err := EncodeSnapshot(snap)
	if err != nil {
		t.Fatalf("EncodeSnapshot: %v", err)
	}
	got, err := DecodeSnapshot(blob)
	if err != nil {
		t.Fatalf("DecodeSnapshot: %v", err)
	}
	if math.Float64bits(got.State.History[0].MeanLoss) != 0x7ff8000000000042 {
		t.Fatalf("NaN payload not preserved: %x", math.Float64bits(got.State.History[0].MeanLoss))
	}
}

// reseal recomputes the CRC trailer after a deliberate mutation, so tests
// reach the section parser instead of stopping at the checksum gate.
func reseal(blob []byte) []byte {
	binary.LittleEndian.PutUint32(blob[len(blob)-4:], crc32.Checksum(blob[:len(blob)-4], crcTable))
	return blob
}

func TestDecodeRejectsCorruptInput(t *testing.T) {
	snap := testSnapshot()
	blob, err := EncodeSnapshot(snap)
	if err != nil {
		t.Fatalf("EncodeSnapshot: %v", err)
	}

	cases := map[string]struct {
		mutate func([]byte) []byte
		want   error
	}{
		"empty":     {func(b []byte) []byte { return nil }, ErrTruncated},
		"too short": {func(b []byte) []byte { return b[:8] }, ErrTruncated},
		"bad magic": {func(b []byte) []byte { b[0] = 'X'; return b }, ErrBadMagic},
		"future version": {func(b []byte) []byte {
			binary.LittleEndian.PutUint16(b[4:6], Version+1)
			return b
		}, ErrVersion},
		"reserved flags": {func(b []byte) []byte {
			binary.LittleEndian.PutUint16(b[6:8], 1)
			return reseal(b)
		}, ErrMalformed},
		"flipped payload byte": {func(b []byte) []byte { b[20] ^= 0xff; return b }, ErrChecksum},
		"truncated tail":       {func(b []byte) []byte { return b[:len(b)-9] }, ErrChecksum},
		"huge section length": {func(b []byte) []byte {
			// First section header sits right after the frame header.
			binary.LittleEndian.PutUint64(b[headerSize+1:], 1<<60)
			return reseal(b)
		}, ErrMalformed},
		"absurd section count": {func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:12], 1<<30)
			return reseal(b)
		}, ErrMalformed},
	}
	for name, c := range cases {
		in := c.mutate(append([]byte(nil), blob...))
		if _, err := DecodeSnapshot(in); !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", name, err, c.want)
		}
	}
}

// TestDecodeNeverOverAllocates: a tiny blob declaring a gigantic vector
// must fail on the length check, not attempt the allocation.
func TestDecodeNeverOverAllocates(t *testing.T) {
	e := newEncoder(32)
	s := e.begin(secVector)
	e.i64(1 << 55) // claims ~2^58 bytes of floats
	e.end(s)
	blob := e.finish()
	if _, err := DecodeVector(blob); !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v, want ErrMalformed", err)
	}

	// Same for a tensor with a huge declared shape.
	e = newEncoder(64)
	s = e.begin(secTensor)
	e.u32(2)
	e.i64(1 << 31)
	e.i64(1 << 31)
	e.end(s)
	blob = e.finish()
	if _, err := DecodeTensors(blob); !errors.Is(err, ErrMalformed) {
		t.Fatalf("tensor err = %v, want ErrMalformed", err)
	}
}

func TestDecodeWrongEntryPoint(t *testing.T) {
	snap, err := EncodeSnapshot(testSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeVector(snap); !errors.Is(err, ErrMalformed) {
		t.Fatalf("DecodeVector(snapshot) = %v, want ErrMalformed", err)
	}
	if _, err := DecodeTensors(snap); !errors.Is(err, ErrMalformed) {
		t.Fatalf("DecodeTensors(snapshot) = %v, want ErrMalformed", err)
	}
	vec := EncodeVector([]float64{1, 2})
	if _, err := DecodeSnapshot(vec); !errors.Is(err, ErrMalformed) {
		t.Fatalf("DecodeSnapshot(vector) = %v, want ErrMalformed", err)
	}
}

// spliceBeforeTrailer inserts junk between the last section and the CRC
// trailer, resealing the checksum — a frame only the strict whole-body
// check can reject, since every section still parses and the CRC holds.
func spliceBeforeTrailer(blob, junk []byte) []byte {
	out := append([]byte(nil), blob[:len(blob)-trailerSize]...)
	out = append(out, junk...)
	out = append(out, make([]byte, trailerSize)...)
	return reseal(out)
}

// TestDecodeRejectsTrailingBytes: the declared sections must consume the
// whole body. Spare CRC-valid bytes would mean two different byte strings
// decode to the same state, breaking decode injectivity.
func TestDecodeRejectsTrailingBytes(t *testing.T) {
	junk := []byte{0xde, 0xad, 0xbe}
	snap, err := EncodeSnapshot(testSnapshot())
	if err != nil {
		t.Fatalf("EncodeSnapshot: %v", err)
	}
	if _, err := DecodeSnapshot(spliceBeforeTrailer(snap, junk)); !errors.Is(err, ErrMalformed) {
		t.Errorf("snapshot: err = %v, want ErrMalformed", err)
	}
	vec := EncodeVector([]float64{1, 2})
	if _, err := DecodeVector(spliceBeforeTrailer(vec, junk)); !errors.Is(err, ErrMalformed) {
		t.Errorf("vector: err = %v, want ErrMalformed", err)
	}
	tn, err := tensor.FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	if err != nil {
		t.Fatalf("FromSlice: %v", err)
	}
	blob := EncodeTensors([]*tensor.Tensor{tn})
	if _, err := DecodeTensors(spliceBeforeTrailer(blob, junk)); !errors.Is(err, ErrMalformed) {
		t.Errorf("tensors: err = %v, want ErrMalformed", err)
	}
}

// TestDecodeSnapshotRejectsDuplicateSections: every snapshot section kind
// is single-occurrence; a duplicate (where last-one-wins would silently
// drop data) must be malformed, matching the meta/state guards.
func TestDecodeSnapshotRejectsDuplicateSections(t *testing.T) {
	build := func(dup byte) []byte {
		e := newEncoder(64)
		sec := e.begin(secMeta)
		e.buf = append(e.buf, []byte(`{"seed":1}`)...)
		e.end(sec)
		sec = e.begin(secState)
		e.i64(0)
		appendVectorPayload(e, []float64{1})
		e.end(sec)
		for i := 0; i < 2; i++ {
			sec = e.begin(dup)
			switch dup {
			case secHistory:
				e.u32(0)
			case secCounts:
				e.i64(0)
			}
			e.end(sec)
		}
		return e.finish()
	}
	for name, kind := range map[string]byte{"history": secHistory, "counts": secCounts} {
		if _, err := DecodeSnapshot(build(kind)); !errors.Is(err, ErrMalformed) {
			t.Errorf("duplicate %s: err = %v, want ErrMalformed", name, err)
		}
	}
}
