package store_test

import (
	"fmt"
	"log"
	"os"

	"calibre/internal/fl"
	"calibre/internal/store"
)

// ExampleStore saves a federation checkpoint and reads it back the way a
// restarted server would: Resume returns the newest good snapshot after
// verifying it belongs to the same configuration.
func ExampleStore() {
	dir, err := os.MkdirTemp("", "calibre-ckpt")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	st, err := store.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	fp := store.Fingerprint("server", "calibre-simclr", "seed=42")
	version, err := st.Save(&store.Snapshot{
		Meta: store.Meta{Seed: 42, Fingerprint: fp, Runtime: "server"},
		State: fl.SimState{
			Round:          2,
			Global:         []float64{0.5, -1.25},
			History:        []fl.RoundStats{{Round: 0, Participants: []int{0, 1}}, {Round: 1, Participants: []int{1, 2}}},
			EligibleCounts: []int{3, 3},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	snap, latest, err := st.Resume(fp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saved v%d, resumed v%d at round %d with global %v\n",
		version, latest, snap.State.Round, snap.State.Global)
	// Output: saved v1, resumed v1 at round 2 with global [0.5 -1.25]
}
