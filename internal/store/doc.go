// Package store is Calibre's durability layer: a compact, deterministic,
// versioned binary codec for tensor and model state, and an on-disk
// checkpoint store that makes multi-hour federations survive process
// crashes. The fl.Simulator and the flnet TCP server checkpoint their
// round state through it and resume bit-identically after a restart; the
// calibre-ckpt CLI inspects, diffs and exports what it writes.
//
// # Blob format
//
// Every blob — snapshot, bare parameter vector or model tensor set —
// shares one self-checking frame:
//
//	┌──────────┬──────────┬──────────┬───────────────┐
//	│ "CLBS"   │ version  │ flags    │ section count │   12-byte header
//	│ 4 bytes  │ u16 LE   │ u16 = 0  │ u32 LE        │
//	├──────────┴──────────┴──────────┴───────────────┤
//	│ section: kind (u8) │ length (u64 LE) │ payload │   × section count
//	├────────────────────────────────────────────────┤
//	│ CRC32-C over every preceding byte (u32 LE)     │   4-byte trailer
//	└────────────────────────────────────────────────┘
//
// Floats are raw little-endian IEEE-754 bits (8 bytes each, NaN payloads
// and ±Inf included), which makes encoding both byte-deterministic and
// lossless to 0 ULP — and measurably smaller and faster than
// encoding/gob, which spends ~9 bytes per random float64 plus reflection
// time (see `calibre-bench -exp codec` and the committed
// BENCH_codec.json). A snapshot carries four sections: JSON metadata
// (seed, config fingerprint, producing runtime), the round + global
// vector, the binary-encoded RoundStats history, and the per-round
// sampling-pool sizes the server replays its RNG against.
//
// The decoder is hardened for hostile input (it is fuzzed; the corpus is
// committed): magic, version, flags and CRC are validated before any
// section is parsed, every declared length is checked against the bytes
// actually present before allocation, and malformed input yields typed
// errors (ErrBadMagic, ErrVersion, ErrChecksum, ErrTruncated,
// ErrMalformed) — never a panic.
//
// # Incremental snapshots
//
// With Store.SetIncremental(true), Save replaces the full global-vector
// section with a delta section: the round number, the version it
// references, and the param package's lossless XOR-delta of this global
// against the referenced version's — unchanged elements cost amortized
// fractions of a byte and slightly-moved weights a few bytes, so
// checkpoint storage scales with per-round drift instead of model size.
// Metadata, history and pool counts stay full (they are a sliver of the
// model payload). Chains are bounded: after deltaChainLimit links Save
// writes the next full snapshot, and it also falls back to full whenever
// no usable reference exists (fresh directory, unreadable latest version,
// or a parameter-dimension change). Store.Open resolves chains
// transparently and bit-exactly — XOR reconstruction is exact for every
// bit pattern — so kill/resume bit-identity is preserved verbatim; the
// standalone DecodeSnapshot refuses an incremental blob with
// ErrIncremental since it cannot see the chain. A broken link (deleted or
// corrupt reference) makes every snapshot above it unreadable, and Latest
// falls back below it, which the chain bound keeps to at most
// deltaChainLimit lost rounds. calibre-ckpt list/inspect/diff report each
// version's encoding, reference and chain depth.
//
// # Checkpoint directory
//
// A Store is a flat directory of ckpt-%08d.calibre files with dense
// versions assigned by Save. Writes are atomic — temp file, fsync, then
// a no-replace link into place — so an existing snapshot can never be
// damaged by a crash or clobbered by a concurrent saver; a torn new file
// simply fails its CRC and Latest falls back to the previous good
// version. Resume adds a configuration fingerprint check so an operator
// cannot accidentally continue a differently-configured federation
// (ErrFingerprintMismatch), and the runtimes additionally refuse to
// resume methods carrying cross-round state a snapshot does not capture
// (fl.ErrStatefulResume).
//
// # Resume state machine
//
// A resuming runtime moves through:
//
//	load      Store.Resume(fingerprint) → latest good Snapshot (skipping
//	          torn files), or ErrNoCheckpoint → start fresh.
//	validate  fl.SimState.Validate: round within budget, history and
//	          pool counts consistent, non-empty global vector; the
//	          parameter dimension must match what the method initializes.
//	replay    The master RNG is reconstructed, not stored: InitGlobal
//	          consumes its draws, then each completed round's sampling
//	          and dropout draws are replayed (the simulator re-derives
//	          the pool; the server replays the recorded EligibleCounts).
//	continue  The round loop starts at State.Round with the snapshot's
//	          global vector and history — bit-identical, from there on,
//	          to a run that never stopped.
package store
