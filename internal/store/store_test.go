package store

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestStoreSaveOpenLatest(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, _, err := st.Latest(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("Latest on empty store = %v, want ErrNoCheckpoint", err)
	}

	a := testSnapshot()
	v1, err := st.Save(a)
	if err != nil || v1 != 1 {
		t.Fatalf("Save #1 = (%d, %v), want (1, nil)", v1, err)
	}
	b := testSnapshot()
	b.State.Round = 4
	b.State.Global[0] = 99
	b.State.History = append(b.State.History, b.State.History[0])
	b.State.EligibleCounts = append(b.State.EligibleCounts, 3)
	v2, err := st.Save(b)
	if err != nil || v2 != 2 {
		t.Fatalf("Save #2 = (%d, %v), want (2, nil)", v2, err)
	}

	got, err := st.Open(1)
	if err != nil {
		t.Fatalf("Open(1): %v", err)
	}
	if !reflect.DeepEqual(got, a) {
		t.Fatalf("Open(1) = %+v, want %+v", got, a)
	}
	latest, version, err := st.Latest()
	if err != nil || version != 2 {
		t.Fatalf("Latest = (v%d, %v), want v2", version, err)
	}
	if !reflect.DeepEqual(latest, b) {
		t.Fatal("Latest returned the wrong snapshot")
	}
	if _, err := st.Open(9); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Open(9) = %v, want ErrNotFound", err)
	}

	// No temp litter after successful saves.
	entries, _ := os.ReadDir(st.Dir())
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
}

// TestLatestSkipsTornWrite is the crash-recovery contract: a truncated
// newest file (a kill mid-write) must fall back to the previous good
// snapshot, and a fully garbage file must be skipped the same way.
func TestLatestSkipsTornWrite(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := st.Save(testSnapshot()); err != nil {
		t.Fatalf("Save: %v", err)
	}
	newer := testSnapshot()
	newer.State.Round = 9
	if _, err := st.Save(newer); err != nil {
		t.Fatalf("Save: %v", err)
	}
	// Tear the newest file in half.
	path := filepath.Join(st.Dir(), fileFor(2))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatalf("truncate: %v", err)
	}

	snap, version, err := st.Latest()
	if err != nil {
		t.Fatalf("Latest with torn head: %v", err)
	}
	if version != 1 || snap.State.Round != 3 {
		t.Fatalf("Latest = v%d round %d, want the good v1", version, snap.State.Round)
	}

	list, err := st.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(list) != 2 || list[0].Corrupt || !list[1].Corrupt {
		t.Fatalf("List = %+v, want v1 good and v2 corrupt", list)
	}
	if list[0].Round != 3 || list[0].Params != 4 {
		t.Fatalf("List[0] metadata = %+v", list[0])
	}
}

func TestResumeFingerprintGuard(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	snap := testSnapshot()
	snap.Meta.Fingerprint = Fingerprint("sim", "calibre-simclr", "cifar10-q(2,500)", "42")
	if _, err := st.Save(snap); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if _, _, err := st.Resume(snap.Meta.Fingerprint); err != nil {
		t.Fatalf("matching resume: %v", err)
	}
	if _, _, err := st.Resume(Fingerprint("sim", "fedavg", "cifar10-q(2,500)", "42")); !errors.Is(err, ErrFingerprintMismatch) {
		t.Fatalf("mismatched resume = %v, want ErrFingerprintMismatch", err)
	}
	// Empty expected fingerprint skips the guard (caller opted out).
	if _, _, err := st.Resume(""); err != nil {
		t.Fatalf("unguarded resume: %v", err)
	}
}

func TestFingerprintStability(t *testing.T) {
	a := Fingerprint("server", "calibre-simclr", "7")
	if a != Fingerprint("server", "calibre-simclr", "7") {
		t.Fatal("fingerprint is not deterministic")
	}
	if a == Fingerprint("server", "calibre-simclr", "8") {
		t.Fatal("fingerprint ignores its inputs")
	}
	// Joining must be injective across field boundaries.
	if Fingerprint("ab", "c") == Fingerprint("a", "bc") {
		t.Fatal("fingerprint field boundaries collide")
	}
	if len(a) != 16 {
		t.Fatalf("fingerprint length %d, want 16 hex chars", len(a))
	}
}

func TestParseVersion(t *testing.T) {
	cases := map[string]struct {
		v  int
		ok bool
	}{
		"ckpt-00000001.calibre": {1, true},
		"ckpt-00012345.calibre": {12345, true},
		"ckpt-.calibre":         {0, false},
		"ckpt-0000000x.calibre": {0, false},
		"ckpt-00000000.calibre": {0, false}, // versions start at 1
		"other.calibre":         {0, false},
		".tmp-ckpt-123":         {0, false},
	}
	for name, c := range cases {
		v, ok := parseVersion(name)
		if v != c.v || ok != c.ok {
			t.Errorf("parseVersion(%q) = (%d, %v), want (%d, %v)", name, v, ok, c.v, c.ok)
		}
	}
}

// TestPublishNeverReplaces simulates the save race: another process
// published the version this saver computed, between the directory
// listing and the publish. The no-replace primitive must leave the
// racer's file intact and land this save in the next free version.
func TestPublishNeverReplaces(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	racer := []byte("racer's snapshot")
	if err := os.WriteFile(filepath.Join(dir, fileFor(1)), racer, 0o644); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, ".tmp-mine")
	if err := os.WriteFile(tmp, []byte("mine"), 0o644); err != nil {
		t.Fatal(err)
	}
	v, err := s.publish(tmp, 1)
	if err != nil || v != 2 {
		t.Fatalf("publish = (%d, %v), want (2, nil)", v, err)
	}
	if got, err := os.ReadFile(filepath.Join(dir, fileFor(1))); err != nil || string(got) != string(racer) {
		t.Fatalf("racer's snapshot clobbered: %q, %v", got, err)
	}
	if got, err := os.ReadFile(filepath.Join(dir, fileFor(2))); err != nil || string(got) != "mine" {
		t.Fatalf("published snapshot = %q, %v, want %q", got, err, "mine")
	}
}

// TestConcurrentSavesNeverClobber: multiple Store handles saving into one
// directory (multiple processes in production) must yield one version per
// save with every snapshot decodable — no clobbered or lost checkpoints.
func TestConcurrentSavesNeverClobber(t *testing.T) {
	dir := t.TempDir()
	const savers, each = 4, 5
	var wg sync.WaitGroup
	for i := 0; i < savers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, err := Open(dir)
			if err != nil {
				t.Errorf("Open: %v", err)
				return
			}
			for j := 0; j < each; j++ {
				snap := testSnapshot()
				snap.Meta.Seed = int64(i*each + j)
				if _, err := st.Save(snap); err != nil {
					t.Errorf("Save: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	st, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	entries, err := st.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(entries) != savers*each {
		t.Fatalf("%d snapshots on disk, want %d", len(entries), savers*each)
	}
	seeds := make(map[int64]bool)
	for _, e := range entries {
		if e.Corrupt {
			t.Errorf("version %d corrupt", e.Version)
			continue
		}
		seeds[e.Meta.Seed] = true
	}
	if len(seeds) != savers*each {
		t.Fatalf("%d distinct snapshots survive, want %d (a save was clobbered)", len(seeds), savers*each)
	}
}
