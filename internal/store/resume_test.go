package store_test

// The end-to-end durability gate for the simulator path: a federation
// checkpointed through a real on-disk Store, with the process state thrown
// away and rebuilt purely from the snapshot file, must finish bit-identical
// to an uninterrupted run. This is the acceptance test the subsystem exists
// for, so it lives next to the store and goes through the full
// encode → fsync → rename → decode path rather than an in-memory sink.

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"calibre/internal/data"
	"calibre/internal/fl"
	"calibre/internal/param"
	"calibre/internal/partition"
	"calibre/internal/store"
)

// driftTrainer's update depends on every input that must survive a resume:
// the global vector, the round number and the per-(round, client) RNG.
type driftTrainer struct{}

func (driftTrainer) Train(ctx context.Context, rng *rand.Rand, c *partition.Client, global param.Vector, round int) (*fl.Update, error) {
	params := make([]float64, len(global))
	for i, v := range global {
		params[i] = v + rng.NormFloat64()*0.1 + float64(round)*0.01
	}
	return &fl.Update{ClientID: c.ID, Params: params, NumSamples: c.Train.Len(), TrainLoss: rng.Float64()}, nil
}

type noopPersonalizer struct{}

func (noopPersonalizer) Personalize(ctx context.Context, rng *rand.Rand, c *partition.Client, global param.Vector) (float64, error) {
	return 0, nil
}

func diskClients(t *testing.T, n int) []*partition.Client {
	t.Helper()
	g, err := data.NewGenerator(data.CIFAR10Spec(), 1)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	rng := rand.New(rand.NewSource(2))
	ds := g.GenerateLabeled(rng, 10*n)
	parts, err := partition.IID(rng, ds, n, 20)
	if err != nil {
		t.Fatalf("IID: %v", err)
	}
	return partition.BuildClients(rng, ds, parts, nil)
}

func diskMethod() *fl.Method {
	return &fl.Method{
		Name:         "drift",
		Trainer:      driftTrainer{},
		Aggregator:   fl.WeightedAverage{},
		Personalizer: noopPersonalizer{},
		InitGlobal: func(rng *rand.Rand) (param.Vector, error) {
			out := make([]float64, 6)
			for i := range out {
				out[i] = rng.NormFloat64()
			}
			return out, nil
		},
	}
}

func TestSimulatorResumeFromDiskBitIdentical(t *testing.T) {
	const total, cut = 8, 3
	clients := diskClients(t, 7)
	cfg := fl.SimConfig{
		Rounds:          total,
		ClientsPerRound: 4,
		Seed:            1234,
		DropoutRate:     0.35,
		Quorum:          2,
		Straggler:       fl.StragglerDrop,
	}

	// Reference: one uninterrupted run.
	sim, err := fl.NewSimulator(cfg, diskMethod(), clients)
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	refGlobal, refHistory, err := sim.Run(context.Background())
	if err != nil {
		t.Fatalf("reference Run: %v", err)
	}

	// Phase 1: "the process that crashes" — run cut rounds, checkpointing
	// every round into a real store.
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	fp := store.Fingerprint("sim", "drift", "1234")
	cfgA := cfg
	cfgA.Rounds = cut
	cfgA.CheckpointEvery = 1
	cfgA.OnCheckpoint = func(state *fl.SimState) error {
		_, err := st.Save(&store.Snapshot{
			Meta:  store.Meta{Seed: cfg.Seed, Fingerprint: fp, Runtime: "simulator"},
			State: *state,
		})
		return err
	}
	simA, err := fl.NewSimulator(cfgA, diskMethod(), clients)
	if err != nil {
		t.Fatalf("NewSimulator A: %v", err)
	}
	if _, _, err := simA.Run(context.Background()); err != nil {
		t.Fatalf("phase-1 Run: %v", err)
	}
	versions, err := st.Versions()
	if err != nil || len(versions) != cut {
		t.Fatalf("Versions = %v (%v), want %d snapshots", versions, err, cut)
	}

	// Phase 2: "the restarted process" — everything rebuilt from disk.
	snap, version, err := st.Resume(fp)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if version != cut || snap.State.Round != cut {
		t.Fatalf("resumed v%d at round %d, want v%d at round %d", version, snap.State.Round, cut, cut)
	}
	cfgB := cfg
	cfgB.ResumeFrom = &snap.State
	simB, err := fl.NewSimulator(cfgB, diskMethod(), diskClients(t, 7))
	if err != nil {
		t.Fatalf("NewSimulator B: %v", err)
	}
	gotGlobal, gotHistory, err := simB.Run(context.Background())
	if err != nil {
		t.Fatalf("resumed Run: %v", err)
	}

	for i := range refGlobal {
		if math.Float64bits(gotGlobal[i]) != math.Float64bits(refGlobal[i]) {
			t.Fatalf("global[%d] differs after disk resume: %x vs %x", i, gotGlobal[i], refGlobal[i])
		}
	}
	if !reflect.DeepEqual(gotHistory, refHistory) {
		t.Fatalf("history differs after disk resume:\n%+v\nvs\n%+v", gotHistory, refHistory)
	}
}
