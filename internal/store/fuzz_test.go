package store

import (
	"encoding/binary"
	"math"
	"testing"

	"calibre/internal/fl"
	"calibre/internal/tensor"
)

// fuzzSeeds builds the committed seed corpus programmatically: valid blobs
// of every flavor plus mutations targeting each decoder gate. go test runs
// every seed as a regular test case; go test -fuzz=FuzzDecode mutates from
// them (additional discovered seeds live in testdata/fuzz/).
func fuzzSeeds() [][]byte {
	snap, _ := EncodeSnapshot(&Snapshot{
		Meta: Meta{Seed: 7, Fingerprint: "abc", Runtime: "simulator"},
		State: fl.SimState{
			Round:  2,
			Global: []float64{1, math.NaN(), math.Inf(-1)},
			History: []fl.RoundStats{
				{Round: 0, Participants: []int{0, 1}, MeanLoss: 0.5},
				{Round: 1, Participants: []int{1}, Responders: []int{1}, Stragglers: []int{}, DeadlineExpired: true},
			},
			EligibleCounts: []int{2, 2},
		},
	})
	vec := EncodeVector([]float64{-0.0, 1e300})
	tens := EncodeTensors([]*tensor.Tensor{tensor.New(2, 3), tensor.New()})
	inc, _ := EncodeSnapshotDelta(&Snapshot{
		Meta:  Meta{Seed: 7, Fingerprint: "abc", Runtime: "simulator"},
		State: fl.SimState{Round: 3, Global: []float64{1, math.NaN(), math.Inf(-1)}, History: []fl.RoundStats{{Round: 2}}, EligibleCounts: []int{2}},
	}, 2, []float64{1, 2, 3})

	seeds := [][]byte{snap, vec, tens, inc, nil, []byte(Magic)}
	// Truncations at interesting boundaries.
	for _, cut := range []int{headerSize, headerSize + secHeaderSize, len(snap) / 2, len(snap) - 1} {
		if cut < len(snap) {
			seeds = append(seeds, snap[:cut])
		}
	}
	// Version bump, flag set, corrupt CRC, huge section length / count —
	// each resealed where needed so the mutation reaches its gate.
	mutate := func(src []byte, fn func([]byte)) []byte {
		b := append([]byte(nil), src...)
		fn(b)
		return b
	}
	seeds = append(seeds,
		mutate(snap, func(b []byte) { binary.LittleEndian.PutUint16(b[4:6], 99) }),
		mutate(snap, func(b []byte) { binary.LittleEndian.PutUint16(b[6:8], 1); reseal(b) }),
		mutate(snap, func(b []byte) { b[len(b)-1] ^= 0xff }),
		mutate(snap, func(b []byte) { binary.LittleEndian.PutUint64(b[headerSize+1:], 1<<60); reseal(b) }),
		mutate(snap, func(b []byte) { binary.LittleEndian.PutUint32(b[8:12], 1<<31-1); reseal(b) }),
		mutate(vec, func(b []byte) { binary.LittleEndian.PutUint64(b[headerSize+secHeaderSize:], 1<<55); reseal(b) }),
	)
	return seeds
}

// FuzzDecode is the decoder-hardening gate: arbitrary bytes must never
// panic or over-allocate in any decode entry point — truncated input,
// corrupted CRCs, wrong versions and huge declared lengths all return
// errors. To keep the fuzzer from stalling at the checksum, every input is
// also retried with its magic/version/CRC fixed up so mutations reach the
// section and payload parsers.
func FuzzDecode(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		decodeAll := func(b []byte) {
			if s, err := DecodeSnapshot(b); (s == nil) == (err == nil) {
				t.Fatalf("DecodeSnapshot: snapshot=%v err=%v", s, err)
			}
			if v, err := DecodeVector(b); err != nil && v != nil {
				t.Fatalf("DecodeVector returned both value and error")
			}
			if ts, err := DecodeTensors(b); err != nil && ts != nil {
				t.Fatalf("DecodeTensors returned both value and error")
			}
		}
		decodeAll(data)
		if len(data) >= headerSize+trailerSize {
			fixed := append([]byte(nil), data...)
			copy(fixed[:4], Magic)
			binary.LittleEndian.PutUint16(fixed[4:6], Version)
			binary.LittleEndian.PutUint16(fixed[6:8], 0)
			decodeAll(reseal(fixed))
		}
	})
}

// FuzzSnapshotRoundTrip checks the inverse property from the fuzzer's
// perspective: any snapshot the fuzzer can describe encodes and decodes
// back to itself bit-for-bit.
func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add(int64(3), 2, uint64(math.Float64bits(1.5)), uint64(math.Float64bits(math.Pi)), true)
	f.Add(int64(-1), 0, uint64(0x7ff8dead_beef0001), uint64(0x8000000000000000), false)
	f.Fuzz(func(t *testing.T, seed int64, round int, bits0, bits1 uint64, expired bool) {
		if round < 0 || round > 64 {
			return
		}
		st := fl.SimState{
			Round:  round,
			Global: []float64{math.Float64frombits(bits0), math.Float64frombits(bits1)},
		}
		for r := 0; r < round; r++ {
			h := fl.RoundStats{Round: r, Participants: []int{r % 3}, MeanLoss: math.Float64frombits(bits0 ^ uint64(r))}
			if expired && r%2 == 0 {
				h.DeadlineExpired = true
				h.Responders = []int{}
				h.Stragglers = []int{r % 3}
			}
			st.History = append(st.History, h)
			st.EligibleCounts = append(st.EligibleCounts, 3)
		}
		snap := &Snapshot{Meta: Meta{Seed: seed, Fingerprint: "fp", Runtime: "fuzz"}, State: st}
		blob, err := EncodeSnapshot(snap)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		got, err := DecodeSnapshot(blob)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.Meta != snap.Meta || got.State.Round != st.Round {
			t.Fatalf("meta/round mismatch: %+v", got)
		}
		for i := range st.Global {
			if math.Float64bits(got.State.Global[i]) != math.Float64bits(st.Global[i]) {
				t.Fatalf("global[%d] bits differ", i)
			}
		}
		if len(got.State.History) != round || len(got.State.EligibleCounts) != round {
			t.Fatalf("history/counts length mismatch: %+v", got.State)
		}
	})
}
