package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestAtomicWriteFileCreatesAndReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "manifest.json")
	if err := AtomicWriteFile(path, []byte("v1"), 0o644); err != nil {
		t.Fatalf("first write: %v", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v1" {
		t.Fatalf("read back %q", got)
	}
	if err := AtomicWriteFile(path, []byte("v2-longer"), 0o644); err != nil {
		t.Fatalf("replace: %v", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v2-longer" {
		t.Fatalf("read back after replace %q", got)
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
}

func TestAtomicWriteFileMissingDirFails(t *testing.T) {
	if err := AtomicWriteFile(filepath.Join(t.TempDir(), "nope", "f"), []byte("x"), 0o644); err == nil {
		t.Fatal("write into a missing directory succeeded")
	}
}
