package store

import (
	"encoding/json"
	"errors"
	"fmt"

	"calibre/internal/fl"
	"calibre/internal/param"
)

// ErrIncremental is returned by DecodeSnapshot for an incremental blob:
// its global vector is a delta against another version, so it can only be
// resolved by a Store that can open the reference (Store.Open does).
var ErrIncremental = errors.New("store: incremental snapshot needs its reference version resolved")

// Meta describes the federation a snapshot belongs to. It travels inside
// the blob (JSON section — it is tiny and string-heavy) so a checkpoint
// directory is self-describing.
type Meta struct {
	// Seed is the federation's master seed.
	Seed int64 `json:"seed"`
	// Fingerprint condenses the run-defining configuration (method,
	// setting, scale, population, quorum knobs). Store.Resume refuses a
	// snapshot whose fingerprint does not match the resuming process's.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Runtime names the producer: "simulator" or "server".
	Runtime string `json:"runtime,omitempty"`
}

// Snapshot is one durable checkpoint: metadata plus the complete round
// state the runtimes resume from.
type Snapshot struct {
	Meta  Meta
	State fl.SimState
}

// RoundStats flag bits (history section).
const (
	histDeadlineExpired byte = 1 << iota
)

// encodeSnapshotWith writes the common snapshot frame, delegating the
// state section (full vector vs incremental delta) to writeState.
func encodeSnapshotWith(s *Snapshot, extra int, writeState func(e *encoder)) ([]byte, error) {
	meta, err := json.Marshal(s.Meta)
	if err != nil {
		return nil, fmt.Errorf("store: encode meta: %w", err)
	}
	st := &s.State
	capacity := len(meta) + 8 + extra + 8 + 8*len(st.EligibleCounts) + 64
	for _, h := range st.History {
		capacity += 56 + 8*(len(h.Participants)+len(h.Responders)+len(h.Stragglers))
	}
	e := newEncoder(capacity)

	sec := e.begin(secMeta)
	e.buf = append(e.buf, meta...)
	e.end(sec)

	writeState(e)

	sec = e.begin(secHistory)
	e.u32(uint32(len(st.History)))
	for _, h := range st.History {
		e.i64(int64(h.Round))
		e.f64(h.MeanLoss)
		e.i64(int64(h.LateUpdates))
		e.i64(int64(h.AdversarialUpdates))
		e.i64(int64(h.RejectedUpdates))
		var flags byte
		if h.DeadlineExpired {
			flags |= histDeadlineExpired
		}
		e.u8(flags)
		e.intVec(h.Participants)
		e.intVec(h.Responders)
		e.intVec(h.Stragglers)
	}
	e.end(sec)

	sec = e.begin(secCounts)
	e.i64(int64(len(st.EligibleCounts)))
	for _, n := range st.EligibleCounts {
		e.i64(int64(n))
	}
	e.end(sec)

	return e.finish(), nil
}

// EncodeSnapshot serializes a snapshot into one self-checking blob.
// Encoding is deterministic: the same snapshot always produces
// byte-identical output. The parameter vector and history are pure binary
// (floats as exact IEEE-754 bits — NaN and ±Inf payloads survive).
func EncodeSnapshot(s *Snapshot) ([]byte, error) {
	return encodeSnapshotWith(s, 8*len(s.State.Global), func(e *encoder) {
		sec := e.begin(secState)
		e.i64(int64(s.State.Round))
		appendVectorPayload(e, s.State.Global)
		e.end(sec)
	})
}

// EncodeSnapshotDelta serializes a snapshot incrementally: its global
// vector is stored as the lossless XOR-delta against refGlobal, the
// (resolved) global of on-disk version refVersion — typically a small
// fraction of the full vector's 8 bytes per element, since consecutive
// checkpoints of a converging federation differ slightly. Metadata,
// history and pool counts are still stored in full (they are a sliver of
// the model payload), so everything except the global vector decodes
// without touching the reference. Decoding requires the reference chain:
// DecodeSnapshot refuses the blob with ErrIncremental, Store.Open
// resolves it.
func EncodeSnapshotDelta(s *Snapshot, refVersion int, refGlobal param.Vector) ([]byte, error) {
	if refVersion < 1 {
		return nil, fmt.Errorf("store: incremental snapshot needs a positive reference version, got %d", refVersion)
	}
	d, err := param.Diff(refGlobal, param.Vector(s.State.Global))
	if err != nil {
		return nil, fmt.Errorf("store: incremental snapshot vs v%d: %w", refVersion, err)
	}
	return encodeSnapshotWith(s, 24+len(d.Bits), func(e *encoder) {
		sec := e.begin(secDeltaState)
		appendDeltaStatePayload(e, s.State.Round, refVersion, d)
		e.end(sec)
	})
}

func readHistoryPayload(p []byte) ([]fl.RoundStats, error) {
	r := &reader{p: p}
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	// Each entry needs ≥ 44 bytes (round, loss, late/adversarial/rejected
	// updates, flags, three presence bytes); reject counts the payload
	// cannot possibly hold.
	if uint64(n)*44 > uint64(r.remaining()) {
		return nil, fmt.Errorf("%w: history declares %d rounds in %d bytes", ErrMalformed, n, r.remaining())
	}
	if n == 0 {
		if r.remaining() != 0 {
			return nil, fmt.Errorf("%w: %d trailing bytes after history", ErrMalformed, r.remaining())
		}
		return nil, nil
	}
	out := make([]fl.RoundStats, n)
	for i := range out {
		h := &out[i]
		round, err := r.i64()
		if err != nil {
			return nil, err
		}
		h.Round = int(round)
		if h.MeanLoss, err = r.f64(); err != nil {
			return nil, err
		}
		late, err := r.i64()
		if err != nil {
			return nil, err
		}
		h.LateUpdates = int(late)
		adv, err := r.i64()
		if err != nil {
			return nil, err
		}
		h.AdversarialUpdates = int(adv)
		rej, err := r.i64()
		if err != nil {
			return nil, err
		}
		h.RejectedUpdates = int(rej)
		flags, err := r.u8()
		if err != nil {
			return nil, err
		}
		if flags&^histDeadlineExpired != 0 {
			return nil, fmt.Errorf("%w: unknown history flags %#x", ErrMalformed, flags)
		}
		h.DeadlineExpired = flags&histDeadlineExpired != 0
		if h.Participants, err = r.intVec(); err != nil {
			return nil, err
		}
		if h.Responders, err = r.intVec(); err != nil {
			return nil, err
		}
		if h.Stragglers, err = r.intVec(); err != nil {
			return nil, err
		}
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after history", ErrMalformed, r.remaining())
	}
	return out, nil
}

func readCountsPayload(p []byte) ([]int, error) {
	r := &reader{p: p}
	n, err := r.i64()
	if err != nil {
		return nil, err
	}
	// Compare against remaining/8 (never n*8, which a hostile n overflows).
	if rem := int64(r.remaining()); n < 0 || rem%8 != 0 || n != rem/8 {
		return nil, fmt.Errorf("%w: counts declare %d entries in %d bytes", ErrMalformed, n, r.remaining())
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]int, n)
	for i := range out {
		v, err := r.i64()
		if err != nil {
			return nil, err
		}
		out[i] = int(v)
	}
	return out, nil
}

// decodeSnapshot parses either snapshot flavor. For a full snapshot ref
// is nil and State.Global is populated; for an incremental one ref holds
// the round/reference/delta and State.Global stays nil until the caller
// resolves the reference chain (Store.Open).
func decodeSnapshot(data []byte) (*Snapshot, *deltaRef, error) {
	f, err := parseFrame(data)
	if err != nil {
		return nil, nil, err
	}
	var (
		s           Snapshot
		ref         *deltaRef
		haveMeta    bool
		haveVector  bool
		haveHistory bool
		haveCounts  bool
	)
	for i := 0; i < f.sections; i++ {
		kind, p, err := f.next()
		if err != nil {
			return nil, nil, err
		}
		switch kind {
		case secMeta:
			if haveMeta {
				return nil, nil, fmt.Errorf("%w: duplicate meta section", ErrMalformed)
			}
			haveMeta = true
			if err := json.Unmarshal(p, &s.Meta); err != nil {
				return nil, nil, fmt.Errorf("%w: meta: %v", ErrMalformed, err)
			}
		case secState:
			if haveVector {
				return nil, nil, fmt.Errorf("%w: duplicate state section", ErrMalformed)
			}
			haveVector = true
			r := &reader{p: p}
			round, err := r.i64()
			if err != nil {
				return nil, nil, err
			}
			s.State.Round = int(round)
			if s.State.Global, err = readVectorPayload(p[r.off:]); err != nil {
				return nil, nil, err
			}
		case secDeltaState:
			if haveVector {
				return nil, nil, fmt.Errorf("%w: duplicate state section", ErrMalformed)
			}
			haveVector = true
			if ref, err = readDeltaStatePayload(p); err != nil {
				return nil, nil, err
			}
			s.State.Round = ref.round
		case secHistory:
			if haveHistory {
				return nil, nil, fmt.Errorf("%w: duplicate history section", ErrMalformed)
			}
			haveHistory = true
			if s.State.History, err = readHistoryPayload(p); err != nil {
				return nil, nil, err
			}
		case secCounts:
			if haveCounts {
				return nil, nil, fmt.Errorf("%w: duplicate counts section", ErrMalformed)
			}
			haveCounts = true
			if s.State.EligibleCounts, err = readCountsPayload(p); err != nil {
				return nil, nil, err
			}
		default:
			return nil, nil, fmt.Errorf("%w: unknown section kind %d", ErrMalformed, kind)
		}
	}
	if err := f.finish(); err != nil {
		return nil, nil, err
	}
	if !haveMeta || !haveVector {
		return nil, nil, fmt.Errorf("%w: snapshot missing %s section", ErrMalformed,
			map[bool]string{false: "meta", true: "state"}[haveMeta])
	}
	return &s, ref, nil
}

// DecodeSnapshot decodes a blob produced by EncodeSnapshot. It never
// panics and never allocates more than the input size implies; corrupt or
// hostile input yields a typed error (ErrBadMagic, ErrVersion,
// ErrChecksum, ErrTruncated, ErrMalformed). An incremental blob
// (EncodeSnapshotDelta) is structurally valid but unresolvable without
// its reference chain and yields ErrIncremental — open it through a
// Store instead.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	s, ref, err := decodeSnapshot(data)
	if err != nil {
		return nil, err
	}
	if ref != nil {
		return nil, fmt.Errorf("%w (reference v%d)", ErrIncremental, ref.refVersion)
	}
	return s, nil
}
