package store_test

// Tests for incremental (delta-encoded) snapshots: chain-resolved reads
// are bit-identical to what was saved, broken chains fall back to older
// full snapshots, the chain length is bounded by periodic full saves, and
// the end-to-end kill/resume bit-identity gate holds with incremental
// encoding enabled.

import (
	"context"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"calibre/internal/fl"
	"calibre/internal/param"
	"calibre/internal/partition"
	"calibre/internal/store"
)

// driftSnap builds a snapshot r rounds in, with a global vector drifting
// slightly (plus adversarial bit patterns) from base.
func driftSnap(rng *rand.Rand, base param.Vector, fp string, r int) *store.Snapshot {
	g := base.Clone()
	for i := range g {
		switch i % 50 {
		case 0:
			g[i] = math.Float64frombits(rng.Uint64()) // occasionally arbitrary bits
		default:
			g[i] += 1e-4 * rng.NormFloat64() * float64(r)
		}
	}
	st := fl.SimState{Round: r, Global: g}
	for i := 0; i < r; i++ {
		st.History = append(st.History, fl.RoundStats{Round: i, Participants: []int{i % 3}, MeanLoss: rng.Float64()})
		st.EligibleCounts = append(st.EligibleCounts, 3)
	}
	return &store.Snapshot{
		Meta:  store.Meta{Seed: 9, Fingerprint: fp, Runtime: "simulator"},
		State: st,
	}
}

func TestIncrementalSnapshotsResolveBitIdentical(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st.SetIncremental(true)
	rng := rand.New(rand.NewSource(4))
	base := make(param.Vector, 4096)
	for i := range base {
		base[i] = rng.NormFloat64()
	}

	const saves = 12 // crosses the full-snapshot reset at deltaChainLimit
	var want []param.Vector
	cur := base
	for r := 1; r <= saves; r++ {
		snap := driftSnap(rng, cur, "fp", r)
		cur = param.Vector(snap.State.Global)
		want = append(want, cur.Clone())
		if _, err := st.Save(snap); err != nil {
			t.Fatalf("save %d: %v", r, err)
		}
	}

	entries, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != saves {
		t.Fatalf("%d entries, want %d", len(entries), saves)
	}
	fulls, incs := 0, 0
	var fullSize, incSize int64
	for i, e := range entries {
		if e.Corrupt {
			t.Fatalf("v%d listed corrupt", e.Version)
		}
		if e.Incremental {
			incs++
			incSize += e.Size
			if e.RefVersion != e.Version-1 {
				t.Fatalf("v%d references v%d, want v%d", e.Version, e.RefVersion, e.Version-1)
			}
			if e.ChainDepth < 1 {
				t.Fatalf("incremental v%d has chain depth %d", e.Version, e.ChainDepth)
			}
		} else {
			fulls++
			fullSize += e.Size
			if e.ChainDepth != 0 {
				t.Fatalf("full v%d has chain depth %d", e.Version, e.ChainDepth)
			}
		}
		if e.Round != i+1 || e.Params != len(base) {
			t.Fatalf("v%d listed round %d params %d", e.Version, e.Round, e.Params)
		}
	}
	// 12 saves with a chain limit of 8: v1 full, v2..v9 incremental, v10
	// full (chain reset), v11..v12 incremental.
	if fulls != 2 || incs != saves-2 {
		t.Fatalf("%d full / %d incremental snapshots, want 2/%d", fulls, incs, saves-2)
	}
	if incSize/int64(incs) >= fullSize/int64(fulls) {
		t.Fatalf("mean incremental size %d not below mean full size %d", incSize/int64(incs), fullSize/int64(fulls))
	}

	for r := 1; r <= saves; r++ {
		snap, err := st.Open(r)
		if err != nil {
			t.Fatalf("open v%d: %v", r, err)
		}
		g := param.Vector(snap.State.Global)
		if len(g) != len(want[r-1]) {
			t.Fatalf("v%d resolved %d params", r, len(g))
		}
		for i := range g {
			if math.Float64bits(g[i]) != math.Float64bits(want[r-1][i]) {
				t.Fatalf("v%d element %d not bit-identical after chain resolution", r, i)
			}
		}
		if len(snap.State.History) != r {
			t.Fatalf("v%d history has %d rounds", r, len(snap.State.History))
		}
	}

	// A fresh handle (cold cache, like a restarted process) keeps chaining
	// off the on-disk state rather than writing a full snapshot.
	st2, err := store.Open(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	st2.SetIncremental(true)
	snap := driftSnap(rng, cur, "fp", saves+1)
	v, err := st2.Save(snap)
	if err != nil {
		t.Fatal(err)
	}
	entries, err = st2.List()
	if err != nil {
		t.Fatal(err)
	}
	last := entries[len(entries)-1]
	if last.Version != v || !last.Incremental || last.RefVersion != saves {
		t.Fatalf("cold-cache save produced %+v, want incremental referencing v%d", last, saves)
	}
}

func TestIncrementalBrokenChainFallsBack(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st.SetIncremental(true)
	rng := rand.New(rand.NewSource(8))
	base := make(param.Vector, 256)
	for i := range base {
		base[i] = rng.NormFloat64()
	}
	cur := base
	for r := 1; r <= 4; r++ { // v1 full, v2..v4 incremental
		snap := driftSnap(rng, cur, "fp", r)
		cur = param.Vector(snap.State.Global)
		if _, err := st.Save(snap); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt the middle link v3: v4 becomes unresolvable, and Latest must
	// fall back to v2 (still resolvable via v1).
	path := filepath.Join(dir, "ckpt-00000003.calibre")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Open(4); err == nil {
		t.Fatal("v4 resolved through a corrupt link")
	}
	snap, v, err := st.Latest()
	if err != nil {
		t.Fatalf("Latest: %v", err)
	}
	if v != 2 || snap.State.Round != 2 {
		t.Fatalf("Latest fell back to v%d (round %d), want v2", v, snap.State.Round)
	}
}

// sgdTrainer nudges every element slightly — the compressible payload
// shape real training produces (diskMethod's driftTrainer moves its tiny
// vector so much that Save's size-parity fallback correctly keeps every
// snapshot full).
type sgdTrainer struct{}

func (sgdTrainer) Train(ctx context.Context, rng *rand.Rand, c *partition.Client, global param.Vector, round int) (*fl.Update, error) {
	params := global.Clone()
	for i := range params {
		params[i] += 1e-4 * rng.NormFloat64()
	}
	return &fl.Update{ClientID: c.ID, Params: params, NumSamples: c.Train.Len(), TrainLoss: rng.Float64()}, nil
}

func sgdMethod() *fl.Method {
	return &fl.Method{
		Name:         "sgd-drift",
		Trainer:      sgdTrainer{},
		Aggregator:   fl.WeightedAverage{},
		Personalizer: noopPersonalizer{},
		InitGlobal: func(rng *rand.Rand) (param.Vector, error) {
			out := make(param.Vector, 512)
			for i := range out {
				out[i] = rng.NormFloat64()
			}
			return out, nil
		},
	}
}

// TestSimulatorResumeIncrementalBitIdentical is the end-to-end durability
// gate with incremental snapshots switched on: resuming from a
// delta-encoded chain finishes bit-identical to an uninterrupted run.
func TestSimulatorResumeIncrementalBitIdentical(t *testing.T) {
	const total, cut = 8, 5 // cut beyond one delta link so resume crosses the chain
	clients := diskClients(t, 7)
	cfg := fl.SimConfig{
		Rounds:          total,
		ClientsPerRound: 4,
		Seed:            4321,
		DropoutRate:     0.3,
		Quorum:          2,
		DeltaUpdates:    true, // wire-representation fidelity mode on top
	}

	sim, err := fl.NewSimulator(cfg, sgdMethod(), clients)
	if err != nil {
		t.Fatal(err)
	}
	refGlobal, refHistory, err := sim.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st.SetIncremental(true)
	fp := store.Fingerprint("sim", "drift", "4321")
	cfgA := cfg
	cfgA.Rounds = cut
	cfgA.CheckpointEvery = 1
	cfgA.OnCheckpoint = st.SaveHook(store.Meta{Seed: cfg.Seed, Fingerprint: fp, Runtime: "simulator"}, nil)
	simA, err := fl.NewSimulator(cfgA, sgdMethod(), clients)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := simA.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	entries, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	incs := 0
	for _, e := range entries {
		if e.Incremental {
			incs++
		}
	}
	if incs != cut-1 {
		t.Fatalf("%d incremental snapshots of %d, want %d", incs, len(entries), cut-1)
	}

	snap, version, err := st.Resume(fp)
	if err != nil {
		t.Fatal(err)
	}
	if version != cut || snap.State.Round != cut {
		t.Fatalf("resumed v%d at round %d, want v%d/%d", version, snap.State.Round, cut, cut)
	}
	cfgB := cfg
	cfgB.ResumeFrom = &snap.State
	simB, err := fl.NewSimulator(cfgB, sgdMethod(), diskClients(t, 7))
	if err != nil {
		t.Fatal(err)
	}
	gotGlobal, gotHistory, err := simB.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := range refGlobal {
		if math.Float64bits(gotGlobal[i]) != math.Float64bits(refGlobal[i]) {
			t.Fatalf("global[%d] differs after incremental resume", i)
		}
	}
	if !reflect.DeepEqual(gotHistory, refHistory) {
		t.Fatalf("history differs after incremental resume:\n%+v\nvs\n%+v", gotHistory, refHistory)
	}
}
