package store

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"calibre/internal/fl"
)

// Store-level typed errors.
var (
	// ErrNoCheckpoint is returned by Latest and Resume when the directory
	// holds no decodable snapshot.
	ErrNoCheckpoint = errors.New("store: no usable checkpoint")
	// ErrFingerprintMismatch is returned by Resume when the latest
	// snapshot belongs to a differently-configured federation.
	ErrFingerprintMismatch = errors.New("store: checkpoint belongs to a different federation configuration")
	// ErrNotFound is returned by Open for a version with no file.
	ErrNotFound = errors.New("store: checkpoint version not found")
)

const (
	filePrefix = "ckpt-"
	fileExt    = ".calibre"
)

// Store is a directory of versioned snapshots. Versions are dense positive
// integers assigned by Save; each lives in its own ckpt-%08d.calibre file,
// written atomically (temp file + fsync + no-replace link) so a crash
// mid-write can never damage an existing snapshot — at worst it leaves a
// torn temp file or a new file that fails its CRC, both of which Latest
// skips. Publishing never replaces an existing file, so concurrent Saves
// into one directory (two processes, or two Store handles) each land in
// their own version instead of clobbering each other.
type Store struct {
	dir string
}

// Open opens (creating if necessary) a checkpoint directory.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty checkpoint directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create %s: %w", dir, err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the directory the store operates on.
func (s *Store) Dir() string { return s.dir }

func fileFor(version int) string {
	return fmt.Sprintf("%s%08d%s", filePrefix, version, fileExt)
}

// parseVersion extracts the version from a snapshot file name.
func parseVersion(name string) (int, bool) {
	if !strings.HasPrefix(name, filePrefix) || !strings.HasSuffix(name, fileExt) {
		return 0, false
	}
	digits := strings.TrimSuffix(strings.TrimPrefix(name, filePrefix), fileExt)
	if len(digits) == 0 {
		return 0, false
	}
	v := 0
	for _, c := range digits {
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + int(c-'0')
		if v > 1<<31 {
			return 0, false
		}
	}
	if v < 1 {
		return 0, false
	}
	return v, true
}

// Versions lists the snapshot versions present on disk, ascending. It does
// not validate file contents.
func (s *Store) Versions() ([]int, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: read %s: %w", s.dir, err)
	}
	var out []int
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if v, ok := parseVersion(e.Name()); ok {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out, nil
}

// Save encodes snap and writes it as the next version. The write is
// atomic and never replaces an existing file: the blob lands in a temp
// file in the same directory, is synced, and is then published under the
// next free version with a no-replace primitive (see publish).
func (s *Store) Save(snap *Snapshot) (int, error) {
	data, err := EncodeSnapshot(snap)
	if err != nil {
		return 0, err
	}
	versions, err := s.Versions()
	if err != nil {
		return 0, err
	}
	next := 1
	if len(versions) > 0 {
		next = versions[len(versions)-1] + 1
	}
	tmp, err := os.CreateTemp(s.dir, ".tmp-"+filePrefix+"*")
	if err != nil {
		return 0, fmt.Errorf("store: create temp snapshot: %w", err)
	}
	defer os.Remove(tmp.Name()) // drops the temp name; the published link survives
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("store: write snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("store: sync snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return 0, fmt.Errorf("store: close snapshot: %w", err)
	}
	version, err := s.publish(tmp.Name(), next)
	if err != nil {
		return 0, err
	}
	// Best-effort directory sync so the publish itself is durable; some
	// filesystems reject fsync on directories, which is not fatal.
	if d, err := os.Open(s.dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return version, nil
}

// publishRetries bounds how many occupied versions publish will step over
// before giving up — far beyond any plausible save race, but finite so a
// pathological directory cannot loop forever.
const publishRetries = 4096

// publish links tmp into place as the first free version ≥ next. Unlike
// rename, os.Link refuses to replace an existing name, so a concurrent
// saver that won the race for a version cannot be clobbered — this saver
// simply steps to the next version and tries again. The temp file is left
// for the caller to remove (both names alias the same inode).
func (s *Store) publish(tmp string, next int) (int, error) {
	for try := 0; try < publishRetries; try++ {
		err := os.Link(tmp, filepath.Join(s.dir, fileFor(next)))
		if err == nil {
			return next, nil
		}
		if !errors.Is(err, fs.ErrExist) {
			return 0, fmt.Errorf("store: publish snapshot: %w", err)
		}
		next++
	}
	return 0, fmt.Errorf("store: publish snapshot: versions %d..%d all occupied", next-publishRetries, next-1)
}

// Open loads and decodes one specific version.
func (s *Store) Open(version int) (*Snapshot, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, fileFor(version)))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: version %d in %s", ErrNotFound, version, s.dir)
	}
	if err != nil {
		return nil, fmt.Errorf("store: read version %d: %w", version, err)
	}
	snap, err := DecodeSnapshot(data)
	if err != nil {
		return nil, fmt.Errorf("store: version %d: %w", version, err)
	}
	return snap, nil
}

// Latest returns the newest decodable snapshot and its version, skipping
// torn or corrupt files (that is the crash-recovery contract: a kill mid-
// write falls back to the previous good snapshot). ErrNoCheckpoint is
// returned when nothing usable exists.
func (s *Store) Latest() (*Snapshot, int, error) {
	versions, err := s.Versions()
	if err != nil {
		return nil, 0, err
	}
	for i := len(versions) - 1; i >= 0; i-- {
		snap, err := s.Open(versions[i])
		if err != nil {
			continue // torn or corrupt: fall back to the previous version
		}
		return snap, versions[i], nil
	}
	return nil, 0, fmt.Errorf("%w in %s", ErrNoCheckpoint, s.dir)
}

// Resume is Latest plus a configuration guard: when fingerprint is
// non-empty it must equal the snapshot's, otherwise the caller would be
// resuming someone else's federation and the result would silently
// diverge. The mismatch is ErrFingerprintMismatch, a typed error.
func (s *Store) Resume(fingerprint string) (*Snapshot, int, error) {
	snap, version, err := s.Latest()
	if err != nil {
		return nil, 0, err
	}
	if fingerprint != "" && snap.Meta.Fingerprint != fingerprint {
		return nil, 0, fmt.Errorf("%w: snapshot v%d has fingerprint %s, this configuration is %s",
			ErrFingerprintMismatch, version, snap.Meta.Fingerprint, fingerprint)
	}
	return snap, version, nil
}

// Entry is one snapshot's directory listing line.
type Entry struct {
	Version int
	Size    int64
	ModTime time.Time
	// Corrupt marks files that fail to decode; the remaining fields
	// besides Version/Size/ModTime are zero for them.
	Corrupt bool
	Meta    Meta
	Round   int
	Params  int
	Rounds  int // history length
}

// List returns one Entry per on-disk version, ascending.
func (s *Store) List() ([]Entry, error) {
	versions, err := s.Versions()
	if err != nil {
		return nil, err
	}
	out := make([]Entry, 0, len(versions))
	for _, v := range versions {
		e := Entry{Version: v}
		if info, err := os.Stat(filepath.Join(s.dir, fileFor(v))); err == nil {
			e.Size = info.Size()
			e.ModTime = info.ModTime()
		}
		snap, err := s.Open(v)
		if err != nil {
			e.Corrupt = true
		} else {
			e.Meta = snap.Meta
			e.Round = snap.State.Round
			e.Params = len(snap.State.Global)
			e.Rounds = len(snap.State.History)
		}
		out = append(out, e)
	}
	return out, nil
}

// SaveHook adapts the store to the runtimes' OnCheckpoint signature
// (fl.SimConfig.OnCheckpoint / flnet.ServerConfig.OnCheckpoint): each call
// persists the delivered state under meta as the next version. onSaved,
// when non-nil, observes successful saves — CLI layers log from it.
func (s *Store) SaveHook(meta Meta, onSaved func(version int, state *fl.SimState)) func(*fl.SimState) error {
	return func(state *fl.SimState) error {
		v, err := s.Save(&Snapshot{Meta: meta, State: *state})
		if err == nil && onSaved != nil {
			onSaved(v, state)
		}
		return err
	}
}

// Fingerprint condenses run-defining configuration fields into a short
// stable hex digest for Meta.Fingerprint. Callers pass the fields that
// must match between the checkpointing process and the resuming one
// (method, setting, scale, seed, population and quorum knobs — not the
// round budget, which resume legitimately extends).
func Fingerprint(parts ...string) string {
	h := sha256.Sum256([]byte(strings.Join(parts, "\x1f")))
	return hex.EncodeToString(h[:8])
}
