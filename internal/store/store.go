package store

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"calibre/internal/fl"
	"calibre/internal/param"
)

// Store-level typed errors.
var (
	// ErrNoCheckpoint is returned by Latest and Resume when the directory
	// holds no decodable snapshot.
	ErrNoCheckpoint = errors.New("store: no usable checkpoint")
	// ErrFingerprintMismatch is returned by Resume when the latest
	// snapshot belongs to a differently-configured federation.
	ErrFingerprintMismatch = errors.New("store: checkpoint belongs to a different federation configuration")
	// ErrNotFound is returned by Open for a version with no file.
	ErrNotFound = errors.New("store: checkpoint version not found")
)

const (
	filePrefix = "ckpt-"
	fileExt    = ".calibre"
)

// Store is a directory of versioned snapshots. Versions are dense positive
// integers assigned by Save; each lives in its own ckpt-%08d.calibre file,
// written atomically (temp file + fsync + no-replace link) so a crash
// mid-write can never damage an existing snapshot — at worst it leaves a
// torn temp file or a new file that fails its CRC, both of which Latest
// skips. Publishing never replaces an existing file, so concurrent Saves
// into one directory (two processes, or two Store handles) each land in
// their own version instead of clobbering each other.
//
// With SetIncremental(true), Save encodes each snapshot's global vector
// as a lossless XOR-delta against the previous version instead of in
// full, bounding the chain at deltaChainLimit links (and falling back to
// a full snapshot whenever no usable reference exists), so checkpoint
// storage scales with per-round drift rather than model size. Open
// resolves delta chains transparently and bit-exactly; Latest still skips
// anything unreadable, including incrementals whose chain is broken.
type Store struct {
	dir string

	mu          sync.Mutex
	incremental bool
	// last caches the most recently saved version's resolved global (and
	// its chain depth), so steady-state incremental saves need no disk
	// reads to find their reference.
	last *saveRef
}

// saveRef is a candidate reference for the next incremental save.
type saveRef struct {
	version int
	global  param.Vector
	depth   int
}

// Open opens (creating if necessary) a checkpoint directory.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty checkpoint directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create %s: %w", dir, err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the directory the store operates on.
func (s *Store) Dir() string { return s.dir }

func fileFor(version int) string {
	return fmt.Sprintf("%s%08d%s", filePrefix, version, fileExt)
}

// parseVersion extracts the version from a snapshot file name.
func parseVersion(name string) (int, bool) {
	if !strings.HasPrefix(name, filePrefix) || !strings.HasSuffix(name, fileExt) {
		return 0, false
	}
	digits := strings.TrimSuffix(strings.TrimPrefix(name, filePrefix), fileExt)
	if len(digits) == 0 {
		return 0, false
	}
	v := 0
	for _, c := range digits {
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + int(c-'0')
		if v > 1<<31 {
			return 0, false
		}
	}
	if v < 1 {
		return 0, false
	}
	return v, true
}

// Versions lists the snapshot versions present on disk, ascending. It does
// not validate file contents.
func (s *Store) Versions() ([]int, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: read %s: %w", s.dir, err)
	}
	var out []int
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if v, ok := parseVersion(e.Name()); ok {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out, nil
}

// deltaChainLimit bounds how many incremental snapshots may chain off one
// full snapshot before Save writes the next full one: resolving a version
// reads at most this many reference files, and a single damaged full
// snapshot can strand at most this many incrementals.
const deltaChainLimit = 8

// SetIncremental toggles incremental encoding for subsequent Saves (see
// the Store doc). Decoding is unaffected: any Store reads both snapshot
// flavors. Turning it off simply makes every later Save a full snapshot.
func (s *Store) SetIncremental(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.incremental = on
}

// pickReference chooses the reference for an incremental save, or nil
// when the next save must be full: incremental encoding off, no usable
// previous version, a dimension change, or a chain already at its limit.
func (s *Store) pickReference(next *Snapshot) *saveRef {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.incremental {
		return nil
	}
	ref := s.last
	if ref == nil {
		// Cold start (fresh handle over an existing directory): anchor the
		// chain on the newest resolvable snapshot.
		snap, v, err := s.Latest()
		if err != nil {
			return nil
		}
		depth, err := s.chainDepth(v)
		if err != nil {
			return nil
		}
		ref = &saveRef{version: v, global: param.Vector(snap.State.Global), depth: depth}
	}
	if ref.depth+1 > deltaChainLimit || len(ref.global) != len(next.State.Global) {
		return nil
	}
	return ref
}

// Save encodes snap and writes it as the next version. The write is
// atomic and never replaces an existing file: the blob lands in a temp
// file in the same directory, is synced, and is then published under the
// next free version with a no-replace primitive (see publish). Under
// SetIncremental the blob is a delta against the previous version
// whenever a usable reference exists (full-snapshot fallback otherwise).
func (s *Store) Save(snap *Snapshot) (int, error) {
	data, err := EncodeSnapshot(snap)
	if err != nil {
		return 0, err
	}
	depth := 0 // chain depth of the blob being written
	if ref := s.pickReference(snap); ref != nil {
		// Keep the delta only when it is actually smaller — a global that
		// shifted substantially can XOR to high-entropy words whose varint
		// form exceeds 8 bytes per element, and a delta that beats no
		// storage would still add chain-resolution cost and fragility.
		// This mirrors the wire path's dense fallback: worst-case storage
		// is full-snapshot parity.
		if b, derr := EncodeSnapshotDelta(snap, ref.version, ref.global); derr == nil && len(b) < len(data) {
			data, depth = b, ref.depth+1
		}
	}
	versions, err := s.Versions()
	if err != nil {
		return 0, err
	}
	next := 1
	if len(versions) > 0 {
		next = versions[len(versions)-1] + 1
	}
	tmp, err := os.CreateTemp(s.dir, ".tmp-"+filePrefix+"*")
	if err != nil {
		return 0, fmt.Errorf("store: create temp snapshot: %w", err)
	}
	defer os.Remove(tmp.Name()) // drops the temp name; the published link survives
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("store: write snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("store: sync snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return 0, fmt.Errorf("store: close snapshot: %w", err)
	}
	version, err := s.publish(tmp.Name(), next)
	if err != nil {
		return 0, err
	}
	// Best-effort directory sync so the publish itself is durable; some
	// filesystems reject fsync on directories, which is not fatal.
	if d, err := os.Open(s.dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	// Remember what just landed so the next incremental save can reference
	// it without touching the disk. The copy keeps the cache independent
	// of whatever the caller does with its state afterwards; when
	// incremental encoding is off the cache would never be read, so skip
	// the model-sized clone entirely (SetIncremental(true) later simply
	// cold-starts from Latest).
	s.mu.Lock()
	if s.incremental {
		s.last = &saveRef{version: version, global: param.Vector(snap.State.Global).Clone(), depth: depth}
	}
	s.mu.Unlock()
	return version, nil
}

// publishRetries bounds how many occupied versions publish will step over
// before giving up — far beyond any plausible save race, but finite so a
// pathological directory cannot loop forever.
const publishRetries = 4096

// publish links tmp into place as the first free version ≥ next. Unlike
// rename, os.Link refuses to replace an existing name, so a concurrent
// saver that won the race for a version cannot be clobbered — this saver
// simply steps to the next version and tries again. The temp file is left
// for the caller to remove (both names alias the same inode).
func (s *Store) publish(tmp string, next int) (int, error) {
	for try := 0; try < publishRetries; try++ {
		err := os.Link(tmp, filepath.Join(s.dir, fileFor(next)))
		if err == nil {
			return next, nil
		}
		if !errors.Is(err, fs.ErrExist) {
			return 0, fmt.Errorf("store: publish snapshot: %w", err)
		}
		next++
	}
	return 0, fmt.Errorf("store: publish snapshot: versions %d..%d all occupied", next-publishRetries, next-1)
}

// readVersion loads one on-disk version without resolving delta chains.
func (s *Store) readVersion(version int) (*Snapshot, *deltaRef, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, fileFor(version)))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil, fmt.Errorf("%w: version %d in %s", ErrNotFound, version, s.dir)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("store: read version %d: %w", version, err)
	}
	snap, ref, err := decodeSnapshot(data)
	if err != nil {
		return nil, nil, fmt.Errorf("store: version %d: %w", version, err)
	}
	return snap, ref, nil
}

// Open loads and decodes one specific version, resolving incremental
// snapshots through their reference chain: each link's XOR-delta is
// applied to the resolved global of the version it references, so the
// returned state is bit-identical to what was saved, however deep the
// chain. A missing or corrupt link anywhere in the chain fails the whole
// resolution (Latest then falls back to an older version).
func (s *Store) Open(version int) (*Snapshot, error) {
	snap, _, err := s.openResolved(version, 0)
	return snap, err
}

// maxResolveDepth is a hard backstop on reference-chain recursion, far
// beyond deltaChainLimit: encode always bounds chains, but the decoder
// must also terminate on directories written by arbitrary producers.
const maxResolveDepth = 1024

// openResolved resolves one version and reports the chain depth below it
// (0 for a full snapshot), so callers needing both pay one chain walk.
func (s *Store) openResolved(version, depth int) (*Snapshot, int, error) {
	if depth > maxResolveDepth {
		return nil, 0, fmt.Errorf("%w: version %d: reference chain deeper than %d", ErrMalformed, version, maxResolveDepth)
	}
	snap, ref, err := s.readVersion(version)
	if err != nil {
		return nil, 0, err
	}
	if ref == nil {
		return snap, 0, nil
	}
	if ref.refVersion >= version {
		// Back-references only: forward or self references could loop and
		// can never occur in an encoder-produced directory.
		return nil, 0, fmt.Errorf("%w: version %d references non-earlier version %d", ErrMalformed, version, ref.refVersion)
	}
	base, baseDepth, err := s.openResolved(ref.refVersion, depth+1)
	if err != nil {
		return nil, 0, fmt.Errorf("store: version %d: resolve reference: %w", version, err)
	}
	global, err := ref.delta.Apply(param.Vector(base.State.Global))
	if err != nil {
		return nil, 0, fmt.Errorf("%w: version %d vs v%d: %v", ErrMalformed, version, ref.refVersion, err)
	}
	snap.State.Global = global
	return snap, baseDepth + 1, nil
}

// chainDepth reports how many reference links sit under version (0 for a
// full snapshot).
func (s *Store) chainDepth(version int) (int, error) {
	depth := 0
	for {
		_, ref, err := s.readVersion(version)
		if err != nil {
			return 0, err
		}
		if ref == nil {
			return depth, nil
		}
		if ref.refVersion >= version {
			return 0, fmt.Errorf("%w: version %d references non-earlier version %d", ErrMalformed, version, ref.refVersion)
		}
		version = ref.refVersion
		depth++
		if depth > maxResolveDepth {
			return 0, fmt.Errorf("%w: reference chain deeper than %d", ErrMalformed, maxResolveDepth)
		}
	}
}

// Latest returns the newest decodable snapshot and its version, skipping
// torn or corrupt files (that is the crash-recovery contract: a kill mid-
// write falls back to the previous good snapshot). ErrNoCheckpoint is
// returned when nothing usable exists.
func (s *Store) Latest() (*Snapshot, int, error) {
	versions, err := s.Versions()
	if err != nil {
		return nil, 0, err
	}
	for i := len(versions) - 1; i >= 0; i-- {
		snap, err := s.Open(versions[i])
		if err != nil {
			continue // torn or corrupt: fall back to the previous version
		}
		return snap, versions[i], nil
	}
	return nil, 0, fmt.Errorf("%w in %s", ErrNoCheckpoint, s.dir)
}

// Resume is Latest plus a configuration guard: when fingerprint is
// non-empty it must equal the snapshot's, otherwise the caller would be
// resuming someone else's federation and the result would silently
// diverge. The mismatch is ErrFingerprintMismatch, a typed error.
func (s *Store) Resume(fingerprint string) (*Snapshot, int, error) {
	snap, version, err := s.Latest()
	if err != nil {
		return nil, 0, err
	}
	if fingerprint != "" && snap.Meta.Fingerprint != fingerprint {
		return nil, 0, fmt.Errorf("%w: snapshot v%d has fingerprint %s, this configuration is %s",
			ErrFingerprintMismatch, version, snap.Meta.Fingerprint, fingerprint)
	}
	return snap, version, nil
}

// Entry is one snapshot's directory listing line.
type Entry struct {
	Version int
	Size    int64
	ModTime time.Time
	// Corrupt marks files that fail to decode (or incrementals whose
	// reference chain is broken); the remaining fields besides
	// Version/Size/ModTime — and Incremental/RefVersion, which come from
	// the file itself — are zero for them.
	Corrupt bool
	Meta    Meta
	Round   int
	Params  int
	Rounds  int // history length
	// Incremental marks delta-encoded snapshots; RefVersion is the version
	// the delta references and ChainDepth how many links separate this
	// snapshot from its underlying full one (0 for full snapshots).
	Incremental bool
	RefVersion  int
	ChainDepth  int
}

// List returns one Entry per on-disk version, ascending.
func (s *Store) List() ([]Entry, error) {
	versions, err := s.Versions()
	if err != nil {
		return nil, err
	}
	out := make([]Entry, 0, len(versions))
	refOf := make(map[int]int)
	for _, v := range versions {
		e := Entry{Version: v}
		if info, err := os.Stat(filepath.Join(s.dir, fileFor(v))); err == nil {
			e.Size = info.Size()
			e.ModTime = info.ModTime()
		}
		// One decode per full snapshot; incrementals additionally resolve
		// their (bounded) reference chain for the state-derived fields.
		snap, ref, err := s.readVersion(v)
		if err == nil && ref != nil {
			e.Incremental = true
			e.RefVersion = ref.refVersion
			refOf[v] = ref.refVersion
			snap, err = s.Open(v)
		}
		if err != nil {
			e.Corrupt = true
		} else {
			e.Meta = snap.Meta
			e.Round = snap.State.Round
			e.Params = len(snap.State.Global)
			e.Rounds = len(snap.State.History)
		}
		out = append(out, e)
	}
	for i := range out {
		v, depth := out[i].Version, 0
		for depth <= len(versions) {
			r, ok := refOf[v]
			if !ok {
				break
			}
			v, depth = r, depth+1
		}
		out[i].ChainDepth = depth
	}
	return out, nil
}

// Stat reports one version's Entry without scanning or resolving the rest
// of the directory (one decode, plus the reference-chain walk for
// incremental snapshots) — the cheap path for tooling that labels a
// single snapshot.
func (s *Store) Stat(version int) (Entry, error) {
	e := Entry{Version: version}
	info, err := os.Stat(filepath.Join(s.dir, fileFor(version)))
	if err != nil {
		return e, fmt.Errorf("%w: version %d in %s", ErrNotFound, version, s.dir)
	}
	e.Size = info.Size()
	e.ModTime = info.ModTime()
	snap, ref, err := s.readVersion(version)
	if err == nil && ref != nil {
		e.Incremental = true
		e.RefVersion = ref.refVersion
		// One pass resolves the state and measures the chain.
		snap, e.ChainDepth, err = s.openResolved(version, 0)
	}
	if err != nil {
		e.Corrupt = true
		return e, nil
	}
	e.Meta = snap.Meta
	e.Round = snap.State.Round
	e.Params = len(snap.State.Global)
	e.Rounds = len(snap.State.History)
	return e, nil
}

// SaveHook adapts the store to the runtimes' OnCheckpoint signature
// (fl.SimConfig.OnCheckpoint / flnet.ServerConfig.OnCheckpoint): each call
// persists the delivered state under meta as the next version. onSaved,
// when non-nil, observes successful saves — CLI layers log from it.
func (s *Store) SaveHook(meta Meta, onSaved func(version int, state *fl.SimState)) func(*fl.SimState) error {
	return func(state *fl.SimState) error {
		v, err := s.Save(&Snapshot{Meta: meta, State: *state})
		if err == nil && onSaved != nil {
			onSaved(v, state)
		}
		return err
	}
}

// Fingerprint condenses run-defining configuration fields into a short
// stable hex digest for Meta.Fingerprint. Callers pass the fields that
// must match between the checkpointing process and the resuming one
// (method, setting, scale, seed, population and quorum knobs — not the
// round budget, which resume legitimately extends).
func Fingerprint(parts ...string) string {
	h := sha256.Sum256([]byte(strings.Join(parts, "\x1f")))
	return hex.EncodeToString(h[:8])
}
