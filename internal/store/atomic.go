package store

import (
	"fmt"
	"os"
	"path/filepath"
)

// AtomicWriteFile replaces path with data atomically: the bytes land in a
// temp file in the same directory, are synced, and the temp file is then
// renamed over path. A crash at any point leaves either the old complete
// file or the new complete file — never a torn mix. This is the
// replace-in-place sibling of the checkpoint store's no-replace publish:
// snapshots are immutable versions and must never be overwritten, whereas
// a single evolving file (the sweep manifest) wants exactly one current
// version with rename's replace semantics.
func AtomicWriteFile(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-"+filepath.Base(path)+"-*")
	if err != nil {
		return fmt.Errorf("store: create temp for %s: %w", path, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: write %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: sync %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: close %s: %w", path, err)
	}
	if err := os.Chmod(tmp.Name(), perm); err != nil {
		return fmt.Errorf("store: chmod %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: publish %s: %w", path, err)
	}
	// Best-effort directory sync so the rename itself is durable; some
	// filesystems reject fsync on directories, which is not fatal.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}
