package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"calibre/internal/param"
	"calibre/internal/tensor"
)

// Codec framing constants. Every blob the codec produces — a snapshot, a
// bare parameter vector or a set of model tensors — shares the same frame:
//
//	offset  size  field
//	0       4     magic "CLBS"
//	4       2     codec version (little-endian uint16)
//	6       2     flags (reserved, must be zero)
//	8       4     section count (little-endian uint32)
//	12      …     sections: kind (uint8), payload length (uint64), payload
//	end-4   4     CRC32-C of every preceding byte
const (
	// Magic identifies a Calibre binary state blob.
	Magic = "CLBS"
	// Version is the codec version this build reads and writes. Bump it
	// on any incompatible layout change; the decoder rejects others with
	// ErrVersion. v2 added the adversarial/rejected-update counts to
	// history entries.
	Version = 2

	headerSize    = 12
	trailerSize   = 4
	secHeaderSize = 1 + 8
	// maxTensorDims bounds tensor rank so a hostile blob cannot declare
	// absurd shapes.
	maxTensorDims = 8
)

// Section kinds. A frame carries one or more sections; which kinds are
// legal depends on the entry point (DecodeSnapshot vs DecodeVector vs
// DecodeTensors).
const (
	secMeta       byte = iota + 1 // JSON-encoded Meta
	secVector                     // int64 count + count little-endian float64s
	secHistory                    // binary-encoded []fl.RoundStats
	secCounts                     // int64 count + count little-endian int64s
	secTensor                     // uint32 ndims + dims (int64) + float64 payload
	secState                      // int64 round + vector payload (snapshot global)
	secDeltaState                 // int64 round + int64 refVersion + delta payload (incremental global)
)

// Typed decode errors. All of them wrap into the error returned to the
// caller; none of them ever panics, and declared lengths are validated
// against the input size before any allocation.
var (
	// ErrBadMagic marks input that is not a Calibre state blob at all.
	ErrBadMagic = errors.New("store: bad magic (not a calibre state blob)")
	// ErrVersion marks a blob written by an incompatible codec version.
	ErrVersion = errors.New("store: unsupported codec version")
	// ErrChecksum marks a blob whose CRC32-C trailer does not match — a
	// torn write or on-disk corruption.
	ErrChecksum = errors.New("store: checksum mismatch (corrupt or torn write)")
	// ErrTruncated marks input too short to hold what its headers declare.
	ErrTruncated = errors.New("store: truncated input")
	// ErrMalformed marks structurally invalid sections: impossible
	// lengths, unknown kinds, or payloads that do not add up.
	ErrMalformed = errors.New("store: malformed section")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// --- Encoding ---------------------------------------------------------------

// encoder builds one frame. Encoding is deterministic: the same state
// always yields byte-identical output (sections are written in a fixed
// order and floats as their exact IEEE-754 bits).
type encoder struct {
	buf      []byte
	sections uint32
}

func newEncoder(capacity int) *encoder {
	e := &encoder{buf: make([]byte, 0, capacity+headerSize+trailerSize)}
	e.buf = append(e.buf, Magic...)
	e.buf = binary.LittleEndian.AppendUint16(e.buf, Version)
	e.buf = binary.LittleEndian.AppendUint16(e.buf, 0) // flags, reserved
	e.buf = binary.LittleEndian.AppendUint32(e.buf, 0) // section count, patched by finish
	return e
}

// begin opens a section and returns the payload start offset for end.
func (e *encoder) begin(kind byte) int {
	e.sections++
	e.buf = append(e.buf, kind)
	e.buf = binary.LittleEndian.AppendUint64(e.buf, 0) // length, patched by end
	return len(e.buf)
}

// end patches the section length opened at start.
func (e *encoder) end(start int) {
	binary.LittleEndian.PutUint64(e.buf[start-8:start], uint64(len(e.buf)-start))
}

func (e *encoder) u8(v byte)    { e.buf = append(e.buf, v) }
func (e *encoder) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *encoder) i64(v int64)  { e.buf = binary.LittleEndian.AppendUint64(e.buf, uint64(v)) }
func (e *encoder) f64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}

func (e *encoder) floats(v []float64) {
	for _, x := range v {
		e.f64(x)
	}
}

// intVec writes a nil-ness flag, a length and the values; the decoder
// restores nil vs empty exactly (RoundStats semantics distinguish them).
func (e *encoder) intVec(v []int) {
	if v == nil {
		e.u8(0)
		return
	}
	e.u8(1)
	e.u32(uint32(len(v)))
	for _, x := range v {
		e.i64(int64(x))
	}
}

// finish patches the section count, appends the CRC trailer and returns
// the completed frame.
func (e *encoder) finish() []byte {
	binary.LittleEndian.PutUint32(e.buf[8:12], e.sections)
	e.buf = binary.LittleEndian.AppendUint32(e.buf, crc32.Checksum(e.buf, crcTable))
	return e.buf
}

// --- Decoding ---------------------------------------------------------------

// frame validates the outer envelope (magic, version, flags, CRC) and
// yields sections.
type frame struct {
	buf      []byte
	off, end int
	sections int
}

func parseFrame(data []byte) (*frame, error) {
	if len(data) < headerSize+trailerSize {
		return nil, fmt.Errorf("%w: %d bytes, need at least %d", ErrTruncated, len(data), headerSize+trailerSize)
	}
	if string(data[:4]) != Magic {
		return nil, fmt.Errorf("%w: %q", ErrBadMagic, data[:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != Version {
		return nil, fmt.Errorf("%w: blob has version %d, this build reads %d", ErrVersion, v, Version)
	}
	if f := binary.LittleEndian.Uint16(data[6:8]); f != 0 {
		return nil, fmt.Errorf("%w: reserved flags %#x set", ErrMalformed, f)
	}
	if sum := binary.LittleEndian.Uint32(data[len(data)-4:]); crc32.Checksum(data[:len(data)-4], crcTable) != sum {
		return nil, ErrChecksum
	}
	n := binary.LittleEndian.Uint32(data[8:12])
	body := len(data) - headerSize - trailerSize
	if uint64(n)*secHeaderSize > uint64(body) {
		return nil, fmt.Errorf("%w: %d sections declared in a %d-byte body", ErrMalformed, n, body)
	}
	return &frame{buf: data, off: headerSize, end: len(data) - trailerSize, sections: int(n)}, nil
}

// next returns the next section. The payload slice aliases the input; the
// declared length is checked against the remaining bytes before use, so a
// hostile length can never cause an over-read or an over-allocation.
func (f *frame) next() (kind byte, payload []byte, err error) {
	if f.end-f.off < secHeaderSize {
		return 0, nil, fmt.Errorf("%w: section header past end of body", ErrTruncated)
	}
	kind = f.buf[f.off]
	n := binary.LittleEndian.Uint64(f.buf[f.off+1 : f.off+secHeaderSize])
	f.off += secHeaderSize
	if n > uint64(f.end-f.off) {
		return 0, nil, fmt.Errorf("%w: section kind %d declares %d bytes, %d remain", ErrMalformed, kind, n, f.end-f.off)
	}
	payload = f.buf[f.off : f.off+int(n)]
	f.off += int(n)
	return kind, payload, nil
}

// finish verifies the declared sections consumed the entire body. A
// CRC-valid frame with spare bytes between the last section and the
// trailer is malformed — accepting it would let two different byte
// strings decode to the same state, breaking the determinism contract
// (encode is injective, so decode must be too).
func (f *frame) finish() error {
	if f.off != f.end {
		return fmt.Errorf("%w: %d trailing bytes after the last section", ErrMalformed, f.end-f.off)
	}
	return nil
}

// reader is a bounds-checked cursor over one section payload.
type reader struct {
	p   []byte
	off int
}

func (r *reader) remaining() int { return len(r.p) - r.off }

func (r *reader) bytes(n int) ([]byte, error) {
	if n < 0 || r.remaining() < n {
		return nil, fmt.Errorf("%w: need %d bytes, %d remain", ErrMalformed, n, r.remaining())
	}
	b := r.p[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *reader) u8() (byte, error) {
	b, err := r.bytes(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *reader) u32() (uint32, error) {
	b, err := r.bytes(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *reader) i64() (int64, error) {
	b, err := r.bytes(8)
	if err != nil {
		return 0, err
	}
	return int64(binary.LittleEndian.Uint64(b)), nil
}

func (r *reader) f64() (float64, error) {
	b, err := r.bytes(8)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), nil
}

// floats reads exactly n float64s, re-checking n against the remaining
// payload so a missed caller-side validation can never over-allocate.
func (r *reader) floats(n int) ([]float64, error) {
	if n < 0 || n > r.remaining()/8 {
		return nil, fmt.Errorf("%w: %d floats declared, %d bytes remain", ErrMalformed, n, r.remaining())
	}
	b, err := r.bytes(8 * n)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out, nil
}

// intVec mirrors encoder.intVec, preserving nil vs empty.
func (r *reader) intVec() ([]int, error) {
	present, err := r.u8()
	if err != nil {
		return nil, err
	}
	switch present {
	case 0:
		return nil, nil
	case 1:
	default:
		return nil, fmt.Errorf("%w: int vector presence byte %d", ErrMalformed, present)
	}
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if uint64(n)*8 > uint64(r.remaining()) {
		return nil, fmt.Errorf("%w: int vector declares %d entries, %d bytes remain", ErrMalformed, n, r.remaining())
	}
	out := make([]int, n)
	for i := range out {
		v, err := r.i64()
		if err != nil {
			return nil, err
		}
		out[i] = int(v)
	}
	return out, nil
}

// --- Vectors ----------------------------------------------------------------

func appendVectorPayload(e *encoder, v []float64) {
	e.i64(int64(len(v)))
	e.floats(v)
}

func readVectorPayload(p []byte) ([]float64, error) {
	r := &reader{p: p}
	n, err := r.i64()
	if err != nil {
		return nil, err
	}
	// Compare against remaining/8 (never n*8, which a hostile n overflows).
	if rem := int64(r.remaining()); n < 0 || rem%8 != 0 || n != rem/8 {
		return nil, fmt.Errorf("%w: vector declares %d elements in %d payload bytes", ErrMalformed, n, r.remaining())
	}
	if n == 0 {
		return nil, nil
	}
	return r.floats(int(n))
}

// EncodeVector frames a bare parameter vector — a model state in
// nn.Flatten layout — as a standalone blob.
func EncodeVector(v []float64) []byte {
	e := newEncoder(secHeaderSize + 8 + 8*len(v))
	s := e.begin(secVector)
	appendVectorPayload(e, v)
	e.end(s)
	return e.finish()
}

// DecodeVector decodes a blob produced by EncodeVector.
func DecodeVector(data []byte) ([]float64, error) {
	f, err := parseFrame(data)
	if err != nil {
		return nil, err
	}
	if f.sections != 1 {
		return nil, fmt.Errorf("%w: vector blob has %d sections, want 1", ErrMalformed, f.sections)
	}
	kind, p, err := f.next()
	if err != nil {
		return nil, err
	}
	if kind != secVector {
		return nil, fmt.Errorf("%w: section kind %d, want vector", ErrMalformed, kind)
	}
	if err := f.finish(); err != nil {
		return nil, err
	}
	return readVectorPayload(p)
}

// --- Delta state ------------------------------------------------------------

// deltaRef is the decoded form of a secDeltaState section: the snapshot's
// round plus the reference version and the XOR-delta of the global vector
// against that version's (resolved) global. The delta payload itself is
// validated by param's canonical decoder when it is applied.
type deltaRef struct {
	round      int
	refVersion int
	delta      *param.Delta
}

func appendDeltaStatePayload(e *encoder, round, refVersion int, d *param.Delta) {
	e.i64(int64(round))
	e.i64(int64(refVersion))
	e.i64(int64(d.Len))
	e.buf = append(e.buf, d.Bits...)
}

func readDeltaStatePayload(p []byte) (*deltaRef, error) {
	r := &reader{p: p}
	round, err := r.i64()
	if err != nil {
		return nil, err
	}
	refVersion, err := r.i64()
	if err != nil {
		return nil, err
	}
	n, err := r.i64()
	if err != nil {
		return nil, err
	}
	if refVersion < 1 || refVersion > 1<<31 {
		return nil, fmt.Errorf("%w: incremental snapshot references version %d", ErrMalformed, refVersion)
	}
	// A tiny payload can legitimately describe a huge unchanged vector (a
	// zero run is 2 bytes whatever its length), so the element count is
	// only sanity-bounded here; Apply checks it against the resolved
	// reference before allocating, so a hostile count cannot over-allocate.
	if n < 0 || n > 1<<48 {
		return nil, fmt.Errorf("%w: incremental snapshot declares %d delta elements", ErrMalformed, n)
	}
	return &deltaRef{
		round:      int(round),
		refVersion: int(refVersion),
		delta:      &param.Delta{Len: int(n), Bits: p[r.off:]},
	}, nil
}

// --- Tensors ----------------------------------------------------------------

func appendTensorPayload(e *encoder, t *tensor.Tensor) {
	nd := t.Dims()
	e.u32(uint32(nd))
	for i := 0; i < nd; i++ {
		e.i64(int64(t.Dim(i)))
	}
	e.floats(t.Data())
}

func readTensorPayload(p []byte) (*tensor.Tensor, error) {
	r := &reader{p: p}
	ndims, err := r.u32()
	if err != nil {
		return nil, err
	}
	if ndims > maxTensorDims {
		return nil, fmt.Errorf("%w: tensor declares %d dimensions, max %d", ErrMalformed, ndims, maxTensorDims)
	}
	shape := make([]int, ndims)
	elems := 1
	for i := range shape {
		d, err := r.i64()
		if err != nil {
			return nil, err
		}
		if d < 0 || (d > 0 && elems > (1<<53)/int(d)) {
			return nil, fmt.Errorf("%w: tensor dimension %d", ErrMalformed, d)
		}
		shape[i] = int(d)
		elems *= int(d)
	}
	if int64(elems)*8 != int64(r.remaining()) {
		return nil, fmt.Errorf("%w: tensor shape %v implies %d elements, payload holds %d bytes", ErrMalformed, shape, elems, r.remaining())
	}
	data, err := r.floats(elems)
	if err != nil {
		return nil, err
	}
	t, err := tensor.FromSlice(data, shape...)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	return t, nil
}

// EncodeTensors frames a model's parameter tensors (for example every
// nn.Param value, in Params order) as one blob, shapes included.
func EncodeTensors(ts []*tensor.Tensor) []byte {
	capacity := 0
	for _, t := range ts {
		capacity += secHeaderSize + 4 + 8*t.Dims() + 8*t.Len()
	}
	e := newEncoder(capacity)
	for _, t := range ts {
		s := e.begin(secTensor)
		appendTensorPayload(e, t)
		e.end(s)
	}
	return e.finish()
}

// DecodeTensors decodes a blob produced by EncodeTensors.
func DecodeTensors(data []byte) ([]*tensor.Tensor, error) {
	f, err := parseFrame(data)
	if err != nil {
		return nil, err
	}
	out := make([]*tensor.Tensor, 0, f.sections)
	for i := 0; i < f.sections; i++ {
		kind, p, err := f.next()
		if err != nil {
			return nil, err
		}
		if kind != secTensor {
			return nil, fmt.Errorf("%w: section kind %d, want tensor", ErrMalformed, kind)
		}
		t, err := readTensorPayload(p)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	if err := f.finish(); err != nil {
		return nil, err
	}
	return out, nil
}
