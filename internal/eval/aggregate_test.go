package eval

import (
	"math"
	"reflect"
	"testing"
)

func TestAggregateSeeds(t *testing.T) {
	if got := AggregateSeeds(nil); got != (SeedAggregate{}) {
		t.Fatalf("empty input: %+v", got)
	}
	in := []Summary{
		{Mean: 0.6, Variance: 0.02, Bottom10: 0.3},
		{Mean: 0.8, Variance: 0.04, Bottom10: 0.5},
	}
	got := AggregateSeeds(in)
	want := SeedAggregate{
		Runs:          2,
		MeanOfMeans:   0.7,
		VarOfMeans:    0.01, // ((0.1)^2 + (0.1)^2) / 2
		MeanVariance:  0.03,
		VarOfVariance: 0.0001, // ((0.01)^2 + (0.01)^2) / 2
		MeanBottom10:  0.4,
	}
	approx := func(a, b float64) bool { return math.Abs(a-b) < 1e-12 }
	if got.Runs != want.Runs || !approx(got.MeanOfMeans, want.MeanOfMeans) ||
		!approx(got.VarOfMeans, want.VarOfMeans) || !approx(got.MeanVariance, want.MeanVariance) ||
		!approx(got.VarOfVariance, want.VarOfVariance) || !approx(got.MeanBottom10, want.MeanBottom10) {
		t.Fatalf("got %+v, want %+v", got, want)
	}
}

func TestAggregateSeedsOrderIndependent(t *testing.T) {
	a := []Summary{{Mean: 0.1, Variance: 0.3}, {Mean: 0.5, Variance: 0.1}, {Mean: 0.9, Variance: 0.2}}
	b := []Summary{a[2], a[0], a[1]}
	if AggregateSeeds(a) != AggregateSeeds(b) {
		t.Fatal("aggregation depends on input order")
	}
}

func TestParetoFront(t *testing.T) {
	points := []ParetoPoint{
		{Label: "best-mean", Mean: 0.9, Variance: 0.05},
		{Label: "fairest", Mean: 0.7, Variance: 0.01},
		{Label: "dominated", Mean: 0.6, Variance: 0.05}, // worse than both
		{Label: "tradeoff", Mean: 0.8, Variance: 0.02},
	}
	front := ParetoFront(points)
	var labels []string
	for _, p := range front {
		labels = append(labels, p.Label)
	}
	want := []string{"best-mean", "tradeoff", "fairest"}
	if !reflect.DeepEqual(labels, want) {
		t.Fatalf("front = %v, want %v", labels, want)
	}

	// Input order must not change the front or its ordering.
	rev := []ParetoPoint{points[3], points[2], points[1], points[0]}
	front2 := ParetoFront(rev)
	if !reflect.DeepEqual(front, front2) {
		t.Fatalf("front depends on input order: %v vs %v", front, front2)
	}
}

func TestParetoFrontDuplicatesSurvive(t *testing.T) {
	points := []ParetoPoint{
		{Label: "a", Mean: 0.5, Variance: 0.02},
		{Label: "b", Mean: 0.5, Variance: 0.02},
	}
	front := ParetoFront(points)
	if len(front) != 2 {
		t.Fatalf("exact ties should both survive, got %v", front)
	}
	if front[0].Label != "a" || front[1].Label != "b" {
		t.Fatalf("tie-break by label broken: %v", front)
	}
}

func TestVarianceReductionOf(t *testing.T) {
	if got := VarianceReductionOf(0.5, 1.0); math.Abs(got-50) > 1e-12 {
		t.Fatalf("got %v, want 50", got)
	}
	if got := VarianceReductionOf(0.5, 0); got != 0 {
		t.Fatalf("zero baseline should yield 0, got %v", got)
	}
}
