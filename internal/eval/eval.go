// Package eval computes the paper's evaluation quantities: per-client
// accuracy summaries (mean = overall performance, variance = fairness),
// representation-quality metrics (silhouette, cluster purity) used to
// quantify the t-SNE figures, and method comparisons.
package eval

import (
	"fmt"
	"math"
	"sort"

	"calibre/internal/kmeans"
	"calibre/internal/tensor"
)

// Summary aggregates a set of per-client test accuracies.
type Summary struct {
	N        int
	Mean     float64
	Variance float64 // population variance — the paper's fairness metric
	Std      float64
	Min      float64
	Max      float64
	Median   float64
	// Bottom10 is the mean accuracy of the worst decile of clients, a
	// tail-fairness view.
	Bottom10 float64
}

// Summarize computes a Summary over per-client accuracies.
func Summarize(accs []float64) Summary {
	n := len(accs)
	if n == 0 {
		return Summary{}
	}
	s := Summary{N: n, Min: math.Inf(1), Max: math.Inf(-1)}
	for _, a := range accs {
		s.Mean += a
		if a < s.Min {
			s.Min = a
		}
		if a > s.Max {
			s.Max = a
		}
	}
	s.Mean /= float64(n)
	for _, a := range accs {
		d := a - s.Mean
		s.Variance += d * d
	}
	s.Variance /= float64(n)
	s.Std = math.Sqrt(s.Variance)

	sorted := append([]float64(nil), accs...)
	sort.Float64s(sorted)
	if n%2 == 1 {
		s.Median = sorted[n/2]
	} else {
		s.Median = (sorted[n/2-1] + sorted[n/2]) / 2
	}
	decile := n / 10
	if decile < 1 {
		decile = 1
	}
	var bot float64
	for _, a := range sorted[:decile] {
		bot += a
	}
	s.Bottom10 = bot / float64(decile)
	return s
}

// String renders the summary in the paper's mean±std convention.
func (s Summary) String() string {
	return fmt.Sprintf("%.2f ± %.2f (var %.4f, n=%d)", s.Mean*100, s.Std*100, s.Variance, s.N)
}

// MethodResult pairs a method name with its accuracy summary, plus the raw
// per-client accuracies for downstream plotting.
type MethodResult struct {
	Method  string
	Summary Summary
	Accs    []float64
}

// RankByMean sorts results by mean accuracy, best first.
func RankByMean(results []MethodResult) []MethodResult {
	out := append([]MethodResult(nil), results...)
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].Summary.Mean > out[j].Summary.Mean
	})
	return out
}

// RankByFairness sorts results by accuracy variance, fairest (lowest) first.
func RankByFairness(results []MethodResult) []MethodResult {
	out := append([]MethodResult(nil), results...)
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].Summary.Variance < out[j].Summary.Variance
	})
	return out
}

// Silhouette scores how crisply the labeled representation clusters are
// separated (the quantitative proxy for the paper's t-SNE figures).
// It delegates to kmeans.Silhouette.
func Silhouette(feats *tensor.Tensor, labels []int) float64 {
	return kmeans.Silhouette(feats, labels)
}

// ClusterPurity measures how well unsupervised clusters align with true
// labels: each cluster votes for its majority label; purity is the
// fraction of points whose cluster vote matches their label.
func ClusterPurity(assign, labels []int) (float64, error) {
	if len(assign) != len(labels) {
		return 0, fmt.Errorf("eval: %d assignments vs %d labels", len(assign), len(labels))
	}
	if len(assign) == 0 {
		return 0, nil
	}
	votes := make(map[int]map[int]int)
	for i, c := range assign {
		if votes[c] == nil {
			votes[c] = make(map[int]int)
		}
		votes[c][labels[i]]++
	}
	var pure int
	for _, v := range votes {
		best := 0
		for _, n := range v {
			if n > best {
				best = n
			}
		}
		pure += best
	}
	return float64(pure) / float64(len(assign)), nil
}

// IntraInterRatio returns mean intra-class distance divided by mean
// inter-class distance in representation space; below 1 means classes are
// compact relative to their separation (lower is crisper).
func IntraInterRatio(feats *tensor.Tensor, labels []int) float64 {
	n := feats.Rows()
	if n < 2 {
		return 0
	}
	var intra, inter float64
	var nIntra, nInter int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := math.Sqrt(tensor.SqDist(feats.Row(i), feats.Row(j)))
			if labels[i] == labels[j] {
				intra += d
				nIntra++
			} else {
				inter += d
				nInter++
			}
		}
	}
	if nIntra == 0 || nInter == 0 || inter == 0 {
		return 0
	}
	return (intra / float64(nIntra)) / (inter / float64(nInter))
}

// Improvement returns the percentage-point difference in mean accuracy of a
// over b (positive = a better), matching how the paper reports margins
// ("outperforms by 1.71%").
func Improvement(a, b Summary) float64 {
	return (a.Mean - b.Mean) * 100
}

// VarianceReduction returns the relative variance reduction of a vs b in
// percent (positive = a fairer), e.g. the paper's "23.8% reduction in
// variance compared to FedAvg-FT".
func VarianceReduction(a, b Summary) float64 {
	return VarianceReductionOf(a.Variance, b.Variance)
}
