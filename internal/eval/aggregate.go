package eval

import "sort"

// SeedAggregate condenses one scenario's per-seed accuracy summaries (one
// Summary per replicate seed) into the sweep report's cross-seed view. It
// separates two very different spreads: VarOfMeans is the run-to-run
// stability of the headline accuracy, while MeanVariance / VarOfVariance
// describe the fairness metric itself — how unequal per-client accuracy
// is on average, and how reproducible that inequality measurement is
// across seeds (the "variance of variance").
type SeedAggregate struct {
	// Runs is the number of per-seed summaries aggregated.
	Runs int
	// MeanOfMeans averages the per-seed mean accuracies.
	MeanOfMeans float64
	// VarOfMeans is the population variance of the per-seed means.
	VarOfMeans float64
	// MeanVariance averages the per-seed fairness variances.
	MeanVariance float64
	// VarOfVariance is the population variance of the per-seed fairness
	// variances.
	VarOfVariance float64
	// MeanBottom10 averages the per-seed worst-decile accuracies.
	MeanBottom10 float64
}

// AggregateSeeds folds per-seed summaries into a SeedAggregate. The
// result is bit-identical whatever the input order: float addition is not
// associative, so the summaries are folded in a canonical (sorted) order
// internally. That is what lets a sweep scheduler complete cells in any
// interleaving and still emit byte-identical reports.
func AggregateSeeds(summaries []Summary) SeedAggregate {
	n := len(summaries)
	if n == 0 {
		return SeedAggregate{}
	}
	sorted := append([]Summary(nil), summaries...)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		switch {
		case a.Mean != b.Mean:
			return a.Mean < b.Mean
		case a.Variance != b.Variance:
			return a.Variance < b.Variance
		default:
			return a.Bottom10 < b.Bottom10
		}
	})
	agg := SeedAggregate{Runs: n}
	for _, s := range sorted {
		agg.MeanOfMeans += s.Mean
		agg.MeanVariance += s.Variance
		agg.MeanBottom10 += s.Bottom10
	}
	agg.MeanOfMeans /= float64(n)
	agg.MeanVariance /= float64(n)
	agg.MeanBottom10 /= float64(n)
	for _, s := range sorted {
		dm := s.Mean - agg.MeanOfMeans
		dv := s.Variance - agg.MeanVariance
		agg.VarOfMeans += dm * dm
		agg.VarOfVariance += dv * dv
	}
	agg.VarOfMeans /= float64(n)
	agg.VarOfVariance /= float64(n)
	return agg
}

// ParetoPoint is one candidate on the accuracy/fairness plane: Mean is
// maximized, Variance minimized.
type ParetoPoint struct {
	Label    string
	Mean     float64
	Variance float64
}

// ParetoFront returns the non-dominated subset of points — those for
// which no other point has both accuracy at least as high and variance at
// least as low, with one strictly better. Exact duplicates on the plane
// survive together. The front is returned sorted by Mean descending
// (Variance, then Label, break ties), so output order is deterministic
// whatever the input order.
func ParetoFront(points []ParetoPoint) []ParetoPoint {
	var front []ParetoPoint
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i == j {
				continue
			}
			if q.Mean >= p.Mean && q.Variance <= p.Variance &&
				(q.Mean > p.Mean || q.Variance < p.Variance) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, p)
		}
	}
	sort.Slice(front, func(i, j int) bool {
		switch {
		case front[i].Mean != front[j].Mean:
			return front[i].Mean > front[j].Mean
		case front[i].Variance != front[j].Variance:
			return front[i].Variance < front[j].Variance
		default:
			return front[i].Label < front[j].Label
		}
	})
	return front
}

// VarianceReductionOf is VarianceReduction on raw variance values: the
// relative reduction of a vs b in percent (positive = a fairer). The
// sweep report uses it on cross-seed mean variances, where no full
// Summary exists.
func VarianceReductionOf(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return (1 - a/b) * 100
}
