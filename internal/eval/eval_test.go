package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"calibre/internal/tensor"
)

func TestSummarizeKnownValues(t *testing.T) {
	s := Summarize([]float64{0.2, 0.4, 0.6, 0.8})
	if math.Abs(s.Mean-0.5) > 1e-12 {
		t.Fatalf("Mean = %v", s.Mean)
	}
	if math.Abs(s.Variance-0.05) > 1e-12 {
		t.Fatalf("Variance = %v", s.Variance)
	}
	if s.Min != 0.2 || s.Max != 0.8 {
		t.Fatalf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if math.Abs(s.Median-0.5) > 1e-12 {
		t.Fatalf("Median = %v", s.Median)
	}
	if s.N != 4 {
		t.Fatalf("N = %d", s.N)
	}
	if s.Bottom10 != 0.2 {
		t.Fatalf("Bottom10 = %v", s.Bottom10)
	}
	if s.String() == "" {
		t.Fatal("String should render")
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	s := Summarize([]float64{0.7})
	if s.Mean != 0.7 || s.Variance != 0 || s.Median != 0.7 {
		t.Fatalf("single summary = %+v", s)
	}
}

func TestSummarizeMedianOdd(t *testing.T) {
	s := Summarize([]float64{0.9, 0.1, 0.5})
	if s.Median != 0.5 {
		t.Fatalf("Median = %v", s.Median)
	}
}

func TestRankings(t *testing.T) {
	results := []MethodResult{
		{Method: "a", Summary: Summary{Mean: 0.5, Variance: 0.02}},
		{Method: "b", Summary: Summary{Mean: 0.7, Variance: 0.05}},
		{Method: "c", Summary: Summary{Mean: 0.6, Variance: 0.01}},
	}
	byMean := RankByMean(results)
	if byMean[0].Method != "b" || byMean[2].Method != "a" {
		t.Fatalf("RankByMean = %v", byMean)
	}
	byFair := RankByFairness(results)
	if byFair[0].Method != "c" || byFair[2].Method != "b" {
		t.Fatalf("RankByFairness = %v", byFair)
	}
	// Original slice unchanged.
	if results[0].Method != "a" {
		t.Fatal("ranking must not mutate input")
	}
}

func TestClusterPurity(t *testing.T) {
	// Perfect clustering.
	p, err := ClusterPurity([]int{0, 0, 1, 1}, []int{5, 5, 7, 7})
	if err != nil || p != 1 {
		t.Fatalf("purity = %v, %v", p, err)
	}
	// Half-mixed.
	p, err = ClusterPurity([]int{0, 0, 0, 0}, []int{1, 1, 2, 2})
	if err != nil || p != 0.5 {
		t.Fatalf("purity = %v, %v", p, err)
	}
	if _, err := ClusterPurity([]int{0}, []int{0, 1}); err == nil {
		t.Fatal("length mismatch should error")
	}
	p, err = ClusterPurity(nil, nil)
	if err != nil || p != 0 {
		t.Fatalf("empty purity = %v, %v", p, err)
	}
}

func TestIntraInterRatio(t *testing.T) {
	// Two tight, well-separated classes → ratio << 1.
	rng := rand.New(rand.NewSource(1))
	tight := tensor.New(20, 2)
	labels := make([]int, 20)
	for i := 0; i < 20; i++ {
		c := i % 2
		labels[i] = c
		tight.SetRow(i, []float64{float64(c)*20 + rng.NormFloat64()*0.1, rng.NormFloat64() * 0.1})
	}
	if r := IntraInterRatio(tight, labels); r >= 0.5 {
		t.Fatalf("separated ratio = %v, want small", r)
	}
	// Fully mixed labels → ratio ≈ 1.
	mixedLabels := make([]int, 20)
	for i := range mixedLabels {
		mixedLabels[i] = rng.Intn(2)
	}
	mixed := tensor.RandN(rng, 1, 20, 2)
	if r := IntraInterRatio(mixed, mixedLabels); r < 0.5 || r > 2 {
		t.Fatalf("mixed ratio = %v, want ≈1", r)
	}
	if IntraInterRatio(tensor.New(1, 2), []int{0}) != 0 {
		t.Fatal("degenerate input should return 0")
	}
}

func TestImprovementAndVarianceReduction(t *testing.T) {
	a := Summary{Mean: 0.75, Variance: 0.01}
	b := Summary{Mean: 0.70, Variance: 0.02}
	if got := Improvement(a, b); math.Abs(got-5) > 1e-9 {
		t.Fatalf("Improvement = %v", got)
	}
	if got := VarianceReduction(a, b); math.Abs(got-50) > 1e-9 {
		t.Fatalf("VarianceReduction = %v", got)
	}
	if VarianceReduction(a, Summary{}) != 0 {
		t.Fatal("zero-variance base should return 0")
	}
}

// Property: variance is non-negative and mean lies within [min, max].
func TestSummaryInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		accs := make([]float64, n)
		for i := range accs {
			accs[i] = rng.Float64()
		}
		s := Summarize(accs)
		return s.Variance >= 0 &&
			s.Mean >= s.Min-1e-12 && s.Mean <= s.Max+1e-12 &&
			s.Bottom10 <= s.Mean+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
