package data

import (
	"math"
	"math/rand"
	"testing"

	"calibre/internal/tensor"
)

func TestStyleAugmenterConfigured(t *testing.T) {
	g, err := NewGenerator(CIFAR10Spec(), 3)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	a := g.StyleAugmenter()
	if a.StyleDirs == nil {
		t.Fatal("StyleAugmenter must carry style directions")
	}
	if a.StyleDirs.Rows() != CIFAR10Spec().StyleDim || a.StyleDirs.Cols() != CIFAR10Spec().Dim {
		t.Fatalf("style dirs shape = %v", a.StyleDirs.Shape())
	}
	if a.StyleStd <= 0 || a.StyleStd >= CIFAR10Spec().StyleStd {
		t.Fatalf("style jitter std = %v, want a positive fraction of %v", a.StyleStd, CIFAR10Spec().StyleStd)
	}
}

func TestStyleAugmentationPerturbsStyleSubspace(t *testing.T) {
	g, err := NewGenerator(CIFAR10Spec(), 4)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	rng := rand.New(rand.NewSource(5))
	a := Augmenter{StyleDirs: g.StyleAugmenter().StyleDirs, StyleStd: 1} // style-only augmenter
	x := make([]float64, CIFAR10Spec().Dim)
	v := a.View(rng, x) // view of the zero vector = pure style perturbation
	if tensor.Norm2(v) == 0 {
		t.Fatal("style augmentation should perturb the sample")
	}
	// The perturbation must lie in the row span of StyleDirs: residual
	// after projecting onto the style rows should be (near) zero because
	// the perturbation is an exact linear combination of them.
	// Verify by reconstructing: delta = Σ c_s dirs_s has the property that
	// solving least squares on the dirs reproduces it. A cheap check:
	// perturbing twice gives different vectors in the same subspace, so
	// their difference is too; and any vector orthogonal to all style rows
	// keeps a zero dot product.
	ortho := make([]float64, len(x))
	ortho[0] = 1
	// Gram–Schmidt ortho against style rows.
	for s := 0; s < a.StyleDirs.Rows(); s++ {
		dir := a.StyleDirs.Row(s)
		proj := tensor.Dot(ortho, dir) / tensor.Dot(dir, dir)
		for j := range ortho {
			ortho[j] -= proj * dir[j]
		}
	}
	if n := tensor.Norm2(ortho); n > 1e-9 {
		got := math.Abs(tensor.Dot(v, ortho)) / (tensor.Norm2(v) * n)
		if got > 0.35 {
			t.Fatalf("style perturbation leaks outside the style span: cos = %v", got)
		}
	}
}

func TestStyleAugmenterDimMismatchIgnored(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := Augmenter{StyleDirs: tensor.New(2, 8), StyleStd: 1}
	x := []float64{1, 2, 3} // dim 3 ≠ 8: style term must be skipped, not panic
	v := a.View(rng, x)
	for i := range x {
		if v[i] != x[i] {
			t.Fatal("mismatched style dirs should leave the sample unchanged")
		}
	}
}

func TestWarpBoundsObservations(t *testing.T) {
	spec := CIFAR10Spec()
	if spec.Warp <= 0 {
		t.Skip("spec has no warp")
	}
	g, err := NewGenerator(spec, 7)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	rng := rand.New(rand.NewSource(8))
	for c := 0; c < spec.NumClasses; c++ {
		x := g.Sample(rng, c)
		for _, v := range x {
			if math.Abs(v) > spec.Warp {
				t.Fatalf("warped observation %v exceeds bound %v", v, spec.Warp)
			}
		}
	}
}

func TestWarpZeroIsLinear(t *testing.T) {
	spec := CIFAR10Spec()
	spec.Warp = 0
	g, err := NewGenerator(spec, 9)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	rng := rand.New(rand.NewSource(10))
	x := g.Sample(rng, 0)
	exceeded := false
	for _, v := range x {
		if math.Abs(v) > 1.0 { // unwarped samples roam beyond the warp bound
			exceeded = true
			break
		}
	}
	if !exceeded {
		t.Fatal("unwarped samples should exceed the tanh bound somewhere")
	}
}
