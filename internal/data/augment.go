package data

import (
	"math/rand"

	"calibre/internal/tensor"
)

// Augmenter produces stochastic views of a sample for self-supervised
// learning. The transforms correspond to the image augmentations used by
// SimCLR-family methods (see DESIGN.md §1):
//
//   - additive Gaussian noise   ↔ color jitter / blur
//   - coordinate dropout        ↔ random cropping (occludes observation dims)
//   - global scale jitter       ↔ brightness / contrast changes
//   - style-subspace resampling ↔ appearance changes that leave content
//     intact (the defining property of image augmentations: they perturb
//     nuisance factors, not identity)
//
// All transforms preserve the class-core direction in expectation, so two
// views of one sample remain positives.
type Augmenter struct {
	NoiseStd    float64 // std of additive Gaussian noise
	DropProb    float64 // probability of zeroing each coordinate
	ScaleJitter float64 // views are scaled by U(1-j, 1+j)

	// StyleDirs, when non-nil, spans the nuisance-style subspace of the
	// generator (one row per style factor, in observation space); each view
	// adds a fresh Gaussian draw along these directions with std StyleStd.
	StyleDirs *tensor.Tensor
	StyleStd  float64
}

// DefaultAugmenter returns the augmentation strengths used across the
// experiments.
func DefaultAugmenter() Augmenter {
	return Augmenter{NoiseStd: 0.35, DropProb: 0.15, ScaleJitter: 0.2}
}

// View returns one augmented copy of x.
func (a Augmenter) View(rng *rand.Rand, x []float64) []float64 {
	out := make([]float64, len(x))
	a.viewInto(rng, x, out)
	return out
}

// viewInto is View writing into caller-owned storage (every element of out
// is overwritten), so the per-step TwoViews path allocates no row buffers.
// It draws from rng in exactly View's order.
func (a Augmenter) viewInto(rng *rand.Rand, x, out []float64) {
	scale := 1.0
	if a.ScaleJitter > 0 {
		scale = 1 + (rng.Float64()*2-1)*a.ScaleJitter
	}
	for i, v := range x {
		if a.DropProb > 0 && rng.Float64() < a.DropProb {
			out[i] = 0
			continue
		}
		nv := v * scale
		if a.NoiseStd > 0 {
			nv += rng.NormFloat64() * a.NoiseStd
		}
		out[i] = nv
	}
	if a.StyleDirs != nil && a.StyleStd > 0 && a.StyleDirs.Cols() == len(x) {
		for s := 0; s < a.StyleDirs.Rows(); s++ {
			delta := rng.NormFloat64() * a.StyleStd
			dir := a.StyleDirs.Row(s)
			for i := range out {
				out[i] += delta * dir[i]
			}
		}
	}
}

// TwoViews returns two independently augmented view matrices for the given
// rows. Row i of both outputs derives from rows[i].
func (a Augmenter) TwoViews(rng *rand.Rand, rows [][]float64) (v1, v2 *tensor.Tensor) {
	if len(rows) == 0 {
		return tensor.New(0, 0), tensor.New(0, 0)
	}
	dim := len(rows[0])
	v1 = tensor.New(len(rows), dim)
	v2 = tensor.New(len(rows), dim)
	for i, x := range rows {
		a.viewInto(rng, x, v1.Row(i))
		a.viewInto(rng, x, v2.Row(i))
	}
	return v1, v2
}

// Batch assembles the given rows into a tensor without augmentation.
func Batch(rows [][]float64) *tensor.Tensor {
	if len(rows) == 0 {
		return tensor.New(0, 0)
	}
	t, err := tensor.Stack(rows)
	if err != nil {
		// Rows of one dataset always share a dimension; a mismatch is a
		// programming error upstream.
		panic(err)
	}
	return t
}
