package data

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"calibre/internal/tensor"
)

func newGen(t *testing.T, spec Spec, seed int64) *Generator {
	t.Helper()
	g, err := NewGenerator(spec, seed)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	return g
}

func TestSpecsAreSane(t *testing.T) {
	for _, spec := range []Spec{CIFAR10Spec(), CIFAR100Spec(), STL10Spec()} {
		if spec.NumClasses < 2 || spec.Dim < 1 {
			t.Fatalf("bad spec %+v", spec)
		}
		if _, err := NewGenerator(spec, 1); err != nil {
			t.Fatalf("spec %s: %v", spec.Name, err)
		}
	}
	if CIFAR100Spec().NumClasses != 100 {
		t.Fatal("CIFAR-100 must have 100 classes")
	}
}

func TestNewGeneratorRejectsBadSpecs(t *testing.T) {
	bad := CIFAR10Spec()
	bad.NumClasses = 1
	if _, err := NewGenerator(bad, 1); err == nil {
		t.Fatal("expected error for 1-class spec")
	}
	bad = CIFAR10Spec()
	bad.Dim = 0
	if _, err := NewGenerator(bad, 1); err == nil {
		t.Fatal("expected error for zero dim")
	}
}

func TestGenerateLabeledShapeAndBalance(t *testing.T) {
	g := newGen(t, CIFAR10Spec(), 7)
	rng := rand.New(rand.NewSource(1))
	d := g.GenerateLabeled(rng, 20)
	if d.Len() != 200 {
		t.Fatalf("Len = %d, want 200", d.Len())
	}
	for _, c := range d.ClassCounts() {
		if c != 20 {
			t.Fatalf("ClassCounts = %v, want 20 each", d.ClassCounts())
		}
	}
	if len(d.X[0]) != g.Spec().Dim {
		t.Fatalf("sample dim = %d, want %d", len(d.X[0]), g.Spec().Dim)
	}
}

func TestGenerateUnlabeled(t *testing.T) {
	g := newGen(t, STL10Spec(), 7)
	rng := rand.New(rand.NewSource(2))
	d := g.GenerateUnlabeled(rng, 50)
	if d.Len() != 50 {
		t.Fatalf("Len = %d", d.Len())
	}
	for _, y := range d.Y {
		if y != Unlabeled {
			t.Fatalf("unlabeled sample has label %d", y)
		}
	}
	// ClassCounts must ignore unlabeled samples.
	for _, c := range d.ClassCounts() {
		if c != 0 {
			t.Fatal("unlabeled samples must not count toward classes")
		}
	}
}

// Same-class samples must be closer on average than different-class samples;
// this is the structure the whole reproduction rests on.
func TestClassStructureExists(t *testing.T) {
	g := newGen(t, CIFAR10Spec(), 11)
	rng := rand.New(rand.NewSource(3))
	d := g.GenerateLabeled(rng, 30)
	var intra, inter float64
	var nIntra, nInter int
	for i := 0; i < d.Len(); i += 3 {
		for j := i + 1; j < d.Len(); j += 7 {
			dist := tensor.SqDist(d.X[i], d.X[j])
			if d.Y[i] == d.Y[j] {
				intra += dist
				nIntra++
			} else {
				inter += dist
				nInter++
			}
		}
	}
	intra /= float64(nIntra)
	inter /= float64(nInter)
	if intra >= inter {
		t.Fatalf("intra-class distance %v should be < inter-class %v", intra, inter)
	}
}

// The generator world is fixed by seed: same seed ⇒ same class cores.
func TestGeneratorDeterministicWorld(t *testing.T) {
	g1 := newGen(t, CIFAR10Spec(), 5)
	g2 := newGen(t, CIFAR10Spec(), 5)
	x1 := g1.Sample(rand.New(rand.NewSource(9)), 3)
	x2 := g2.Sample(rand.New(rand.NewSource(9)), 3)
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatal("same world seed + same rng must reproduce samples")
		}
	}
	g3 := newGen(t, CIFAR10Spec(), 6)
	x3 := g3.Sample(rand.New(rand.NewSource(9)), 3)
	same := true
	for i := range x1 {
		if x1[i] != x3[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different world seeds should differ")
	}
}

func TestSubsetAndLabels(t *testing.T) {
	g := newGen(t, CIFAR10Spec(), 1)
	rng := rand.New(rand.NewSource(4))
	d := g.GenerateLabeled(rng, 5)
	sub := d.Subset([]int{0, 10, 20})
	if sub.Len() != 3 {
		t.Fatalf("Subset len = %d", sub.Len())
	}
	if sub.Y[0] != d.Y[0] || sub.Y[1] != d.Y[10] {
		t.Fatal("Subset labels must follow indices")
	}
	if &sub.X[0][0] != &d.X[0][0] {
		t.Fatal("Subset should share feature storage")
	}
	rows := d.Rows([]int{1, 2})
	if &rows[0][0] != &d.X[1][0] {
		t.Fatal("Rows should share storage")
	}
	labels := d.Labels([]int{1, 2})
	if labels[0] != d.Y[1] {
		t.Fatal("Labels mismatch")
	}
}

func TestSplitFractions(t *testing.T) {
	g := newGen(t, CIFAR10Spec(), 1)
	rng := rand.New(rand.NewSource(5))
	d := g.GenerateLabeled(rng, 10) // 100 samples
	train, test := d.Split(rng, 0.8)
	if train.Len() != 80 || test.Len() != 20 {
		t.Fatalf("Split = %d/%d, want 80/20", train.Len(), test.Len())
	}
	// No overlap, full coverage.
	seen := make(map[*float64]bool, d.Len())
	for _, x := range train.X {
		seen[&x[0]] = true
	}
	for _, x := range test.X {
		if seen[&x[0]] {
			t.Fatal("train/test overlap")
		}
	}
	// Tiny dataset: at least one train sample.
	tiny := d.Subset([]int{0, 1})
	tr, _ := tiny.Split(rng, 0.1)
	if tr.Len() < 1 {
		t.Fatal("Split must keep at least one training sample")
	}
}

func TestMerge(t *testing.T) {
	g := newGen(t, CIFAR10Spec(), 1)
	rng := rand.New(rand.NewSource(6))
	a := g.GenerateLabeled(rng, 2)
	b := g.GenerateUnlabeled(rng, 7)
	m, err := Merge(a, b)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if m.Len() != a.Len()+b.Len() {
		t.Fatalf("Merge len = %d", m.Len())
	}
	if _, err := Merge(); err == nil {
		t.Fatal("Merge of nothing should error")
	}
	other := &Dataset{Name: "x", NumClasses: 3, Dim: 2, X: [][]float64{{1, 2}}, Y: []int{0}}
	if _, err := Merge(a, other); err == nil {
		t.Fatal("Merge with mismatched schema should error")
	}
}

func TestBatcherCoversEpoch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := NewBatcher(rng, 10, 4)
	seen := make(map[int]int)
	for i := 0; i < 3; i++ { // 4+4+2 covers one epoch
		batch, ok := b.Next()
		if !ok {
			t.Fatal("Next should succeed")
		}
		for _, j := range batch {
			seen[j]++
		}
	}
	if len(seen) != 10 {
		t.Fatalf("one epoch should cover all 10 samples, saw %d", len(seen))
	}
}

func TestBatcherSkipsSingletonTail(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	b := NewBatcher(rng, 5, 4)
	first, ok := b.Next()
	if !ok || len(first) != 4 {
		t.Fatalf("first batch = %v", first)
	}
	// Tail would be a single sample; batcher must reshuffle instead.
	second, ok := b.Next()
	if !ok || len(second) < 2 {
		t.Fatalf("second batch = %v, want ≥2 rows", second)
	}
}

func TestBatcherTinyDataset(t *testing.T) {
	b := NewBatcher(rand.New(rand.NewSource(9)), 1, 4)
	if _, ok := b.Next(); ok {
		t.Fatal("a 1-sample dataset cannot form contrastive batches")
	}
}

func TestAugmenterPreservesDim(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := DefaultAugmenter()
	x := make([]float64, 32)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	v := a.View(rng, x)
	if len(v) != len(x) {
		t.Fatalf("view dim = %d", len(v))
	}
	// Two views should differ from each other and from the original.
	v2 := a.View(rng, x)
	same := true
	for i := range v {
		if v[i] != v2[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("independent views should differ")
	}
}

func TestAugmenterZeroIsIdentityNoiseless(t *testing.T) {
	a := Augmenter{}
	rng := rand.New(rand.NewSource(11))
	x := []float64{1, -2, 3}
	v := a.View(rng, x)
	for i := range x {
		if v[i] != x[i] {
			t.Fatalf("zero augmenter should be identity: %v", v)
		}
	}
}

func TestTwoViewsShape(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := DefaultAugmenter()
	rows := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	v1, v2 := a.TwoViews(rng, rows)
	if v1.Rows() != 3 || v2.Rows() != 3 || v1.Cols() != 2 {
		t.Fatalf("TwoViews shapes = %v/%v", v1.Shape(), v2.Shape())
	}
	e1, e2 := a.TwoViews(rng, nil)
	if e1.Len() != 0 || e2.Len() != 0 {
		t.Fatal("TwoViews of empty rows should be empty")
	}
}

// Property: augmented views keep correlation with the original sample —
// the class signal survives augmentation.
func TestAugmentationPreservesSignalProperty(t *testing.T) {
	a := DefaultAugmenter()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, 64)
		for i := range x {
			x[i] = rng.NormFloat64() * 2
		}
		v := a.View(rng, x)
		return tensor.CosineSim(x, v) > 0.4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchHelper(t *testing.T) {
	rows := [][]float64{{1, 2}, {3, 4}}
	b := Batch(rows)
	if b.Rows() != 2 || b.At(1, 1) != 4 {
		t.Fatalf("Batch = %v", b)
	}
	if Batch(nil).Len() != 0 {
		t.Fatal("Batch(nil) should be empty")
	}
}

func TestSTL10UnlabeledAdvantageShape(t *testing.T) {
	// STL-10's unlabeled pool must dwarf the labeled split at paper scale;
	// here we just verify the two pools coexist with the same schema.
	g := newGen(t, STL10Spec(), 3)
	rng := rand.New(rand.NewSource(13))
	labeled := g.GenerateLabeled(rng, 10)
	unlabeled := g.GenerateUnlabeled(rng, 500)
	if unlabeled.Len() <= labeled.Len() {
		t.Fatal("unlabeled pool should be larger")
	}
	if unlabeled.Dim != labeled.Dim {
		t.Fatal("pools must share dimension")
	}
	m, err := Merge(labeled, unlabeled)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if m.Len() != 600 {
		t.Fatalf("merged len = %d", m.Len())
	}
}

func TestSampleFiniteValues(t *testing.T) {
	g := newGen(t, CIFAR100Spec(), 17)
	rng := rand.New(rand.NewSource(14))
	for c := 0; c < 100; c += 13 {
		x := g.Sample(rng, c)
		for _, v := range x {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("non-finite sample value for class %d", c)
			}
		}
	}
}
