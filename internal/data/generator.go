package data

import (
	"fmt"
	"math"
	"math/rand"

	"calibre/internal/tensor"
)

// Spec describes a synthetic dataset family. See DESIGN.md §1 for how the
// parameters map onto the image datasets used in the paper.
type Spec struct {
	Name       string
	NumClasses int
	Dim        int // observation dimension (stands in for image pixels)
	LatentDim  int // class-core dimension
	StyleDim   int // nuisance-style dimension

	ClassSep float64 // distance scale between class cores
	ClassStd float64 // within-class spread in latent space
	StyleStd float64 // style-factor magnitude (what augmentation perturbs)
	NoiseStd float64 // observation noise

	// Warp, when positive, applies a saturating elementwise nonlinearity
	// x ← Warp·tanh(x/Warp) to the observation. This is what makes the
	// synthetic task non-trivially learnable: a linear model on raw
	// observations can no longer separate classes perfectly, so learned
	// encoders matter (as they do for real images).
	Warp float64
}

// CIFAR10Spec mirrors CIFAR-10: 10 classes, fully labeled.
func CIFAR10Spec() Spec {
	return Spec{
		Name: "synth-cifar10", NumClasses: 10,
		Dim: 64, LatentDim: 16, StyleDim: 24,
		ClassSep: 1.5, ClassStd: 0.85, StyleStd: 2.6, NoiseStd: 0.55,
		Warp: 1.0,
	}
}

// CIFAR100Spec mirrors CIFAR-100: 100 classes, tighter class packing (the
// harder fine-grained regime).
func CIFAR100Spec() Spec {
	return Spec{
		Name: "synth-cifar100", NumClasses: 100,
		Dim: 64, LatentDim: 24, StyleDim: 24,
		ClassSep: 1.25, ClassStd: 0.9, StyleStd: 2.6, NoiseStd: 0.55,
		Warp: 1.0,
	}
}

// STL10Spec mirrors STL-10: 10 classes, few labeled samples, and a large
// unlabeled pool (generated separately with GenerateUnlabeled).
func STL10Spec() Spec {
	return Spec{
		Name: "synth-stl10", NumClasses: 10,
		Dim: 64, LatentDim: 16, StyleDim: 28,
		ClassSep: 1.4, ClassStd: 0.9, StyleStd: 2.8, NoiseStd: 0.6,
		Warp: 1.0,
	}
}

// Generator produces samples from a Spec. The class cores and projection
// matrices are fixed at construction (per seed), so train/test/unlabeled
// splits drawn from one generator share the same underlying world.
type Generator struct {
	spec  Spec
	cores *tensor.Tensor // NumClasses × LatentDim
	projA *tensor.Tensor // LatentDim × Dim (class-core projection)
	projB *tensor.Tensor // StyleDim × Dim (style projection)
}

// NewGenerator builds a generator for spec with the world fixed by seed.
func NewGenerator(spec Spec, seed int64) (*Generator, error) {
	if spec.NumClasses < 2 {
		return nil, fmt.Errorf("data: spec needs ≥2 classes, got %d", spec.NumClasses)
	}
	if spec.Dim < 1 || spec.LatentDim < 1 || spec.StyleDim < 1 {
		return nil, fmt.Errorf("data: spec dims must be positive: %+v", spec)
	}
	rng := rand.New(rand.NewSource(seed))
	g := &Generator{
		spec:  spec,
		cores: tensor.RandN(rng, spec.ClassSep, spec.NumClasses, spec.LatentDim),
		projA: tensor.RandN(rng, 1/math.Sqrt(float64(spec.LatentDim)), spec.LatentDim, spec.Dim),
		projB: tensor.RandN(rng, 1/math.Sqrt(float64(spec.StyleDim)), spec.StyleDim, spec.Dim),
	}
	return g, nil
}

// Spec returns the generator's spec.
func (g *Generator) Spec() Spec { return g.spec }

// StyleAugmenter returns the default augmentation pipeline extended with
// this generator's style directions, the synthetic analogue of image
// augmentations that perturb appearance but preserve identity. The jitter
// magnitude is a fraction of the generative style scale: augmentations
// nudge appearance, they do not resample it wholesale (two views must stay
// recognizably the same sample).
func (g *Generator) StyleAugmenter() Augmenter {
	a := DefaultAugmenter()
	a.StyleDirs = g.projB.Clone()
	a.StyleStd = 0.35 * g.spec.StyleStd
	return a
}

// Sample draws one observation of the given class using rng.
func (g *Generator) Sample(rng *rand.Rand, class int) []float64 {
	sp := g.spec
	x := make([]float64, sp.Dim)
	core := g.cores.Row(class)
	// x += (core + classNoise)·A
	for l := 0; l < sp.LatentDim; l++ {
		u := core[l] + rng.NormFloat64()*sp.ClassStd
		arow := g.projA.Row(l)
		for j := 0; j < sp.Dim; j++ {
			x[j] += u * arow[j]
		}
	}
	// x += style·B
	for s := 0; s < sp.StyleDim; s++ {
		sv := rng.NormFloat64() * sp.StyleStd
		brow := g.projB.Row(s)
		for j := 0; j < sp.Dim; j++ {
			x[j] += sv * brow[j]
		}
	}
	for j := 0; j < sp.Dim; j++ {
		x[j] += rng.NormFloat64() * sp.NoiseStd
	}
	if sp.Warp > 0 {
		for j := 0; j < sp.Dim; j++ {
			x[j] = sp.Warp * math.Tanh(x[j]/sp.Warp)
		}
	}
	return x
}

// GenerateLabeled draws perClass labeled samples for every class.
func (g *Generator) GenerateLabeled(rng *rand.Rand, perClass int) *Dataset {
	sp := g.spec
	n := perClass * sp.NumClasses
	d := &Dataset{
		Name:       sp.Name,
		NumClasses: sp.NumClasses,
		Dim:        sp.Dim,
		X:          make([][]float64, 0, n),
		Y:          make([]int, 0, n),
	}
	for c := 0; c < sp.NumClasses; c++ {
		for i := 0; i < perClass; i++ {
			d.X = append(d.X, g.Sample(rng, c))
			d.Y = append(d.Y, c)
		}
	}
	return d
}

// GenerateUnlabeled draws n samples with uniformly random (hidden) classes
// and label Unlabeled. This is the STL-10 unlabeled pool: only SSL methods
// can consume it.
func (g *Generator) GenerateUnlabeled(rng *rand.Rand, n int) *Dataset {
	sp := g.spec
	d := &Dataset{
		Name:       sp.Name + "-unlabeled",
		NumClasses: sp.NumClasses,
		Dim:        sp.Dim,
		X:          make([][]float64, 0, n),
		Y:          make([]int, 0, n),
	}
	for i := 0; i < n; i++ {
		c := rng.Intn(sp.NumClasses)
		d.X = append(d.X, g.Sample(rng, c))
		d.Y = append(d.Y, Unlabeled)
	}
	return d
}
