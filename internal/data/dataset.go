// Package data provides the synthetic datasets standing in for CIFAR-10,
// CIFAR-100 and STL-10 (see DESIGN.md §1), plus the SSL augmentation
// pipeline.
//
// Each sample is produced by a latent-factor model: a class-determined core
// vector plus nuisance "style" factors, both pushed through fixed random
// projections into observation space. Augmentations perturb style and
// observation noise while preserving the class core — the invariance
// structure that self-supervised objectives (SimCLR, BYOL, ...) exploit.
package data

import (
	"fmt"
	"math/rand"
)

// Unlabeled marks a sample with no class annotation (STL-10's unlabeled
// split).
const Unlabeled = -1

// Dataset is an in-memory labeled (or partially labeled) dataset.
type Dataset struct {
	Name       string
	NumClasses int
	Dim        int
	X          [][]float64 // per-sample feature vectors
	Y          []int       // labels; Unlabeled (-1) where unknown
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.X) }

// Subset returns a dataset view containing the given sample indices. The
// feature slices are shared with the parent (not copied).
func (d *Dataset) Subset(idx []int) *Dataset {
	sub := &Dataset{
		Name:       d.Name,
		NumClasses: d.NumClasses,
		Dim:        d.Dim,
		X:          make([][]float64, len(idx)),
		Y:          make([]int, len(idx)),
	}
	for i, j := range idx {
		sub.X[i] = d.X[j]
		sub.Y[i] = d.Y[j]
	}
	return sub
}

// Split shuffles sample order (with rng) and divides the dataset into a
// train part holding trainFrac of the samples and a test part holding the
// rest. Feature slices are shared.
func (d *Dataset) Split(rng *rand.Rand, trainFrac float64) (train, test *Dataset) {
	idx := rng.Perm(d.Len())
	cut := int(trainFrac * float64(len(idx)))
	if cut < 1 && len(idx) > 0 {
		cut = 1
	}
	return d.Subset(idx[:cut]), d.Subset(idx[cut:])
}

// ClassCounts returns how many samples carry each label (unlabeled samples
// are not counted).
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.NumClasses)
	for _, y := range d.Y {
		if y >= 0 && y < d.NumClasses {
			counts[y]++
		}
	}
	return counts
}

// ClassIndices returns, for each class, the indices of its samples.
func (d *Dataset) ClassIndices() [][]int {
	out := make([][]int, d.NumClasses)
	for i, y := range d.Y {
		if y >= 0 && y < d.NumClasses {
			out[y] = append(out[y], i)
		}
	}
	return out
}

// Merge concatenates datasets with identical schema into one.
func Merge(parts ...*Dataset) (*Dataset, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("data: Merge of no datasets")
	}
	first := parts[0]
	out := &Dataset{Name: first.Name, NumClasses: first.NumClasses, Dim: first.Dim}
	for _, p := range parts {
		if p.Dim != first.Dim || p.NumClasses != first.NumClasses {
			return nil, fmt.Errorf("data: Merge schema mismatch (%d/%d classes, %d/%d dim)",
				p.NumClasses, first.NumClasses, p.Dim, first.Dim)
		}
		out.X = append(out.X, p.X...)
		out.Y = append(out.Y, p.Y...)
	}
	return out, nil
}

// Batcher yields shuffled mini-batch index slices over a dataset.
type Batcher struct {
	rng   *rand.Rand
	n     int
	size  int
	perm  []int
	start int
}

// NewBatcher creates a batcher over n samples with the given batch size.
// Batches smaller than 2 samples at the epoch tail are dropped (contrastive
// losses need at least two rows).
func NewBatcher(rng *rand.Rand, n, size int) *Batcher {
	if size < 1 {
		size = 1
	}
	b := &Batcher{rng: rng, n: n, size: size}
	b.reshuffle()
	return b
}

func (b *Batcher) reshuffle() {
	b.perm = b.rng.Perm(b.n)
	b.start = 0
}

// Next returns the next batch of sample indices, reshuffling at epoch
// boundaries. It returns false when the dataset has fewer than 2 samples.
func (b *Batcher) Next() ([]int, bool) {
	if b.n < 2 {
		return nil, false
	}
	if b.start >= b.n || b.n-b.start < 2 {
		b.reshuffle()
	}
	end := b.start + b.size
	if end > b.n {
		end = b.n
	}
	batch := b.perm[b.start:end]
	b.start = end
	return batch, true
}

// Rows gathers the feature rows at idx into a contiguous [][]float64.
func (d *Dataset) Rows(idx []int) [][]float64 {
	out := make([][]float64, len(idx))
	for i, j := range idx {
		out[i] = d.X[j]
	}
	return out
}

// Labels gathers the labels at idx.
func (d *Dataset) Labels(idx []int) []int {
	out := make([]int, len(idx))
	for i, j := range idx {
		out[i] = d.Y[j]
	}
	return out
}
