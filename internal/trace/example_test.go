package trace_test

import (
	"bytes"
	"fmt"

	"calibre/internal/trace"
)

// ExampleRecorder records one round's span with an injected clock — the
// deterministic regime the byte-identity tests pin — and reads it back.
func ExampleRecorder() {
	var buf bytes.Buffer
	rec := trace.New(&buf, trace.Config{Clock: trace.StepClock(100)})
	rec.Emit(trace.Event{Kind: trace.KindRoundStart, TS: rec.Now(), Runtime: "sim", Round: 0, Client: -1, N: 2})
	rec.Emit(trace.Event{Kind: trace.KindClientUpdate, TS: rec.Now(), Runtime: "sim", Round: 0, Client: 1,
		Wire: "delta", Bytes: 96, Dur: 40})
	rec.Emit(trace.Event{Kind: trace.KindClientDrop, TS: rec.Now(), Runtime: "sim", Round: 0, Client: 3,
		Reason: trace.DropStraggler})
	rec.Close()

	events, _ := trace.ReadAll(&buf)
	for _, e := range events {
		fmt.Printf("%-14s ts=%d client=%d\n", e.Kind, e.TS, e.Client)
	}
	// Output:
	// round_start    ts=0 client=-1
	// client_update  ts=100 client=1
	// client_drop    ts=200 client=3
}

// ExampleReadAll shows the crash-tolerance contract: a trace cut mid-record
// still yields every complete record, flagged with ErrTruncated.
func ExampleReadAll() {
	var buf bytes.Buffer
	rec := trace.New(&buf, trace.Config{Clock: trace.StepClock(1)})
	rec.Emit(trace.Event{Kind: trace.KindRoundStart, TS: rec.Now(), Round: 0, Client: -1})
	rec.Emit(trace.Event{Kind: trace.KindRoundEnd, TS: rec.Now(), Round: 0, Client: -1})
	rec.Close()
	torn := buf.Bytes()[:buf.Len()-4] // a crash tears the tail

	events, err := trace.ReadAll(bytes.NewReader(torn))
	fmt.Println("decoded:", len(events))
	fmt.Println("torn tail:", err != nil)
	// Output:
	// decoded: 1
	// torn tail: true
}
