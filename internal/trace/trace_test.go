package trace

import (
	"bytes"
	"errors"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// memSink collects batches in memory.
type memSink struct {
	bytes.Buffer
	closed int
}

func (m *memSink) Close() error { m.closed++; return nil }

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Emit(Event{Kind: KindRoundStart})
	if got := r.Now(); got != 0 {
		t.Fatalf("nil Now = %d", got)
	}
	if r.WithCell("x") != nil {
		t.Fatal("nil WithCell returned non-nil")
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if New(nil, Config{}) != nil {
		t.Fatal("New(nil sink) should yield a nil recorder")
	}
}

func TestRoundTrip(t *testing.T) {
	var sink memSink
	r := New(&sink, Config{Clock: StepClock(10)})
	in := []Event{
		{Kind: KindRoundStart, TS: r.Now(), Runtime: "sim", Round: 0, Client: -1, N: 3},
		{Kind: KindClientDispatch, TS: r.Now(), Runtime: "sim", Round: 0, Client: 7},
		{Kind: KindClientUpdate, TS: r.Now(), Runtime: "sim", Round: 0, Client: 7,
			Wire: "delta", Bytes: 512, Dur: 90, Loss: 0.25, Norm: 1.75},
		{Kind: KindClientDrop, TS: r.Now(), Runtime: "sim", Round: 0, Client: 8, Reason: DropStraggler},
		{Kind: KindRoundEnd, TS: r.Now(), Runtime: "sim", Round: 0, Client: -1, N: 1, Dur: 40, Loss: 0.25},
		{Kind: KindCheckpointSave, TS: r.Now(), Runtime: "sim", Round: 0, Client: -1, Note: "round 0"},
	}
	for _, e := range in {
		r.Emit(e)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if sink.closed != 1 {
		t.Fatalf("sink closed %d times, want 1", sink.closed)
	}
	out, err := ReadAll(bytes.NewReader(sink.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d events, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("event %d: got %+v, want %+v", i, out[i], in[i])
		}
	}
}

// TestEncodingDeterministic pins that identical event sequences encode to
// identical bytes — the foundation of the byte-identity acceptance test.
func TestEncodingDeterministic(t *testing.T) {
	run := func() []byte {
		var sink memSink
		r := New(&sink, Config{Clock: StepClock(7), RingSize: 3})
		for round := 0; round < 4; round++ {
			r.Emit(Event{Kind: KindRoundStart, TS: r.Now(), Round: round, Client: -1, N: 2})
			r.Emit(Event{Kind: KindClientUpdate, TS: r.Now(), Round: round, Client: round % 2,
				Wire: "dense", Bytes: 64, Loss: 1.5})
			r.Emit(Event{Kind: KindRoundEnd, TS: r.Now(), Round: round, Client: -1, N: 1})
		}
		r.Close()
		return sink.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("two identical runs encoded differently:\n%s\n---\n%s", a, b)
	}
}

func TestCellStamping(t *testing.T) {
	var sink memSink
	r := New(&sink, Config{Clock: StepClock(1)})
	cellA := r.WithCell("method=a")
	cellA.Emit(Event{Kind: KindCellStart, Round: -1, Client: -1})
	cellA.Emit(Event{Kind: KindRoundStart, Round: 0, Client: -1, Cell: "explicit"})
	r.Emit(Event{Kind: KindRoundStart, Round: 0, Client: -1})
	r.Close()
	out, err := ReadAll(bytes.NewReader(sink.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Cell != "method=a" {
		t.Errorf("view did not stamp cell: %+v", out[0])
	}
	if out[1].Cell != "explicit" {
		t.Errorf("explicit cell overwritten: %+v", out[1])
	}
	if out[2].Cell != "" {
		t.Errorf("root recorder stamped a cell: %+v", out[2])
	}
}

func TestRingFlushPreservesOrder(t *testing.T) {
	var sink memSink
	r := New(&sink, Config{Clock: StepClock(1), RingSize: 4})
	const total = 31 // not a multiple of the ring, exercises partial final flush
	for i := 0; i < total; i++ {
		r.Emit(Event{Kind: KindClientUpdate, TS: int64(i), Round: i, Client: i})
	}
	r.Close()
	out, err := ReadAll(bytes.NewReader(sink.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != total {
		t.Fatalf("decoded %d events, want %d", len(out), total)
	}
	for i, e := range out {
		if e.Round != i || e.TS != int64(i) {
			t.Fatalf("event %d out of order: %+v", i, e)
		}
	}
}

func TestConcurrentEmit(t *testing.T) {
	var sink memSink
	r := New(&sink, Config{RingSize: 8})
	var wg sync.WaitGroup
	const workers, per = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Emit(Event{Kind: KindClientUpdate, TS: r.Now(), Round: i, Client: w})
			}
		}(w)
	}
	wg.Wait()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := ReadAll(bytes.NewReader(sink.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != workers*per {
		t.Fatalf("decoded %d events, want %d (recorder must not drop)", len(out), workers*per)
	}
}

func TestEmitAfterCloseIsNoop(t *testing.T) {
	var sink memSink
	r := New(&sink, Config{})
	r.Emit(Event{Kind: KindRoundStart, Round: 0, Client: -1})
	r.Close()
	n := sink.Len()
	r.Emit(Event{Kind: KindRoundEnd, Round: 0, Client: -1})
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if sink.Len() != n || sink.closed != 1 {
		t.Fatalf("emit/close after close had effects: len %d→%d, closed %d", n, sink.Len(), sink.closed)
	}
}

// errSink fails every write; the recorder must stay usable and report the
// first error, never blocking the federation it instruments.
type errSink struct{ calls int }

func (s *errSink) Write(p []byte) (int, error) { s.calls++; return 0, errors.New("disk gone") }

func TestSinkErrorIsStickyNotFatal(t *testing.T) {
	sink := &errSink{}
	r := New(sink, Config{RingSize: 2})
	for i := 0; i < 10; i++ {
		r.Emit(Event{Kind: KindRoundStart, Round: i, Client: -1})
	}
	if err := r.Flush(); err == nil {
		t.Fatal("flush swallowed the sink error")
	}
	if err := r.Close(); err == nil {
		t.Fatal("close swallowed the sink error")
	}
	if sink.calls != 1 {
		t.Fatalf("sink written %d times after first error, want 1", sink.calls)
	}
}

func TestSpecialFloatsSkipped(t *testing.T) {
	var sink memSink
	r := New(&sink, Config{})
	r.Emit(Event{Kind: KindRoundEnd, Round: 0, Client: -1, Loss: math.NaN()})
	r.Emit(Event{Kind: KindRoundEnd, Round: 1, Client: -1, Loss: math.Inf(1)})
	r.Close()
	out, err := ReadAll(bytes.NewReader(sink.Bytes()))
	if err != nil {
		t.Fatalf("NaN/Inf loss produced invalid JSON: %v", err)
	}
	if out[0].Loss != 0 || out[1].Loss != 0 {
		t.Fatalf("special floats leaked: %+v", out)
	}
}

func TestStringEscaping(t *testing.T) {
	var sink memSink
	r := New(&sink, Config{})
	note := "quote\" backslash\\ newline\n tab\t ctrl\x01 utf8™ bad\xff"
	r.Emit(Event{Kind: KindCellEnd, Round: -1, Client: -1, Note: note, Cell: `k="v"`})
	r.Close()
	out, err := ReadAll(bytes.NewReader(sink.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want := strings.Replace(note, "\xff", "�", 1)
	if out[0].Note != want {
		t.Fatalf("note round-trip: got %q, want %q", out[0].Note, want)
	}
	if out[0].Cell != `k="v"` {
		t.Fatalf("cell round-trip: got %q", out[0].Cell)
	}
}

func TestReaderTornTail(t *testing.T) {
	var sink memSink
	r := New(&sink, Config{})
	r.Emit(Event{Kind: KindRoundStart, Round: 0, Client: -1})
	r.Emit(Event{Kind: KindRoundEnd, Round: 0, Client: -1})
	r.Close()
	full := sink.Bytes()
	// Cut the file mid final record, as a crash would.
	torn := full[:len(full)-5]
	events, err := ReadAll(bytes.NewReader(torn))
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("torn tail error = %v, want ErrTruncated", err)
	}
	if len(events) != 1 || events[0].Kind != KindRoundStart {
		t.Fatalf("torn tail should keep the complete prefix, got %+v", events)
	}
}

func TestReaderCorruption(t *testing.T) {
	cases := map[string]string{
		"bad length byte": "x7 {}\n",
		"empty prefix":    " {}\n",
		"oversized claim": "99999999 {}\n",
		"missing newline": `19 {"t":"round_start"}X`,
		"not json":        "8 not-json\n",
		"missing kind":    `11 {"round":1}` + "\n",
		"wrong type":      `14 {"t":1,"ts":2}` + "\n",
		"trailing junk":   "3 {}x\n",
	}
	for name, in := range cases {
		if _, err := ReadAll(strings.NewReader(in)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: error = %v, want ErrCorrupt", name, err)
		}
	}
}

func TestReaderCleanEOFAfterRecords(t *testing.T) {
	var sink memSink
	r := New(&sink, Config{})
	r.Emit(Event{Kind: KindResume, Round: 3, Client: -1})
	r.Close()
	tr := NewReader(bytes.NewReader(sink.Bytes()))
	if _, err := tr.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Next(); err != io.EOF {
		t.Fatalf("want clean io.EOF, got %v", err)
	}
}

func TestFileSinkAppendAndReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	for i := 0; i < 2; i++ {
		s, err := OpenFile(path, FileOptions{})
		if err != nil {
			t.Fatal(err)
		}
		r := New(s, Config{Clock: StepClock(1)})
		r.Emit(Event{Kind: KindResume, Round: i, Client: -1})
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0].Round != 0 || events[1].Round != 1 {
		t.Fatalf("append across opens lost records: %+v", events)
	}
}

func TestFileSinkTruncate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := os.WriteFile(path, []byte("stale"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := OpenFile(path, FileOptions{Truncate: true})
	if err != nil {
		t.Fatal(err)
	}
	r := New(s, Config{})
	r.Emit(Event{Kind: KindRoundStart, Round: 0, Client: -1})
	r.Close()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := ReadAll(f); err != nil {
		t.Fatalf("truncate left stale bytes: %v", err)
	}
}

func TestFileSinkRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.jsonl")
	s, err := OpenFile(path, FileOptions{RotateBytes: 256, Keep: 2})
	if err != nil {
		t.Fatal(err)
	}
	r := New(s, Config{Clock: StepClock(1), RingSize: 1}) // flush every event
	const total = 64
	for i := 0; i < total; i++ {
		r.Emit(Event{Kind: KindClientUpdate, TS: int64(i), Round: i, Client: i, Bytes: 1024})
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// Live file plus at most Keep generations, each individually decodable,
	// newest-first order path < path.1 < path.2 when read oldest-first.
	var got []Event
	for _, p := range []string{path + ".2", path + ".1", path} {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatalf("generation %s missing: %v", p, err)
		}
		if int64(len(b)) > 256+128 {
			t.Fatalf("generation %s overflowed the bound: %d bytes", p, len(b))
		}
		events, err := ReadAll(bytes.NewReader(b))
		if err != nil {
			t.Fatalf("generation %s corrupt: %v", p, err)
		}
		got = append(got, events...)
	}
	if _, err := os.Stat(path + ".3"); !os.IsNotExist(err) {
		t.Fatal("rotation kept more generations than Keep")
	}
	// The retained window is a contiguous, ordered suffix of the emission.
	for i := 1; i < len(got); i++ {
		if got[i].Round != got[i-1].Round+1 {
			t.Fatalf("retained records not contiguous at %d: %+v then %+v", i, got[i-1], got[i])
		}
	}
	if last := got[len(got)-1].Round; last != total-1 {
		t.Fatalf("newest record is round %d, want %d", last, total-1)
	}
}

func TestEmitAllocationDiscipline(t *testing.T) {
	var sink memSink
	r := New(&sink, Config{RingSize: 64})
	e := Event{Kind: KindClientUpdate, Runtime: "sim", Round: 1, Client: 2,
		Wire: "delta", Bytes: 100, Dur: 5, Loss: 0.5}
	// Warm up ring + scratch growth, then steady state must not allocate.
	for i := 0; i < 256; i++ {
		r.Emit(e)
	}
	avg := testing.AllocsPerRun(512, func() { r.Emit(e) })
	if avg > 0.01 {
		t.Fatalf("Emit allocates %.2f objects per call in steady state", avg)
	}
}
