// Package trace is Calibre's flight recorder: a structured, durable event
// log answering "what happened to client N in round R" after the fact,
// which aggregate counters (package obs) cannot.
//
// Producers — fl.Simulator, flnet.Server, and the sweep scheduler — emit
// typed Events (round spans, per-client dispatch/update/drop with an
// attributed drop reason, checkpoint/resume marks, sweep cell spans)
// through a Recorder. The Recorder buffers them in a preallocated bounded
// ring and drains the ring into an append-only Sink as length-prefixed
// JSONL ("<len> <json>\n"), batching writes so the hot path is one short
// critical section with no allocation. FileSink adds size-bounded file
// rotation using the same atomic same-directory rename discipline as
// store.AtomicWriteFile.
//
// Determinism is a first-class contract, matching the rest of the repo:
// timestamps come from an injectable Clock, field order in the encoding
// is fixed, and emission happens in canonical order on the round loop —
// so a run with an injected clock produces byte-identical trace files,
// and an instrumented run is bit-identical to a bare one (pinned by
// TestTraceDoesNotPerturbRun). A nil *Recorder is a no-op, so runtimes
// instrument unconditionally, like obs.Registry.
//
// Traces are read back with Reader/ReadAll, which tolerate the torn tail
// a crash leaves (ErrTruncated) and refuse structural damage
// (ErrCorrupt). The cmd/calibre-trace CLI builds summaries, ASCII
// timelines, and filtered views on top of this package.
package trace
