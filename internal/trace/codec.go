package trace

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"unicode/utf8"
)

// Wire format: one record per line,
//
//	<decimal body length> <json body>\n
//
// The explicit length prefix makes torn tails detectable (a crash mid-write
// leaves a record whose body is shorter than its prefix) and lets readers
// skip bodies without parsing them. Bodies are plain JSON objects, so the
// file doubles as JSONL for jq-style tooling: `cut -d' ' -f2- trace.jsonl`.

// Sink receives encoded trace batches. FileSink is the production
// implementation; tests use in-memory buffers.
type Sink interface {
	Write(p []byte) (int, error)
}

// maxRecordLen bounds a single record body on decode; anything larger is
// treated as corruption rather than an allocation request.
const maxRecordLen = 1 << 20

var (
	// ErrCorrupt reports a structurally invalid record (bad length
	// prefix, missing separator or newline, oversized body, or a body
	// that is not the JSON of an Event).
	ErrCorrupt = errors.New("trace: corrupt record")
	// ErrTruncated reports a record cut off by end-of-file — the
	// expected shape of the final record after a crash. Readers that
	// tolerate torn tails (calibre-trace does) treat it as a clean stop.
	ErrTruncated = errors.New("trace: truncated record")
)

// appendRecord encodes e as one framed record onto dst, using rec as the
// reused body scratch. It returns the grown dst and scratch so callers
// keep both buffers alive across calls without allocation.
func appendRecord(dst, rec []byte, e *Event) (newDst, newRec []byte) {
	rec = appendEventJSON(rec[:0], e)
	dst = strconv.AppendInt(dst, int64(len(rec)), 10)
	dst = append(dst, ' ')
	dst = append(dst, rec...)
	dst = append(dst, '\n')
	return dst, rec
}

// appendEventJSON appends e's JSON body to dst. The encoding is hand-rolled
// for two reasons: the hot path must not allocate, and field order must be
// fixed so an injected clock yields byte-identical traces. Round and
// Client are always emitted (with -1 meaning "not scoped"); other optional
// fields follow omitempty semantics.
func appendEventJSON(dst []byte, e *Event) []byte {
	dst = append(dst, `{"t":`...)
	dst = appendJSONString(dst, string(e.Kind))
	dst = append(dst, `,"ts":`...)
	dst = strconv.AppendInt(dst, e.TS, 10)
	if e.Runtime != "" {
		dst = append(dst, `,"rt":`...)
		dst = appendJSONString(dst, e.Runtime)
	}
	if e.Cell != "" {
		dst = append(dst, `,"cell":`...)
		dst = appendJSONString(dst, e.Cell)
	}
	dst = append(dst, `,"round":`...)
	dst = strconv.AppendInt(dst, int64(e.Round), 10)
	dst = append(dst, `,"client":`...)
	dst = strconv.AppendInt(dst, int64(e.Client), 10)
	if e.Reason != "" {
		dst = append(dst, `,"reason":`...)
		dst = appendJSONString(dst, string(e.Reason))
	}
	if e.Wire != "" {
		dst = append(dst, `,"wire":`...)
		dst = appendJSONString(dst, e.Wire)
	}
	if e.Bytes != 0 {
		dst = append(dst, `,"bytes":`...)
		dst = strconv.AppendInt(dst, e.Bytes, 10)
	}
	if e.Dur != 0 {
		dst = append(dst, `,"dur_ns":`...)
		dst = strconv.AppendInt(dst, e.Dur, 10)
	}
	if e.N != 0 {
		dst = append(dst, `,"n":`...)
		dst = strconv.AppendInt(dst, int64(e.N), 10)
	}
	if e.Loss != 0 && !math.IsNaN(e.Loss) && !math.IsInf(e.Loss, 0) {
		dst = append(dst, `,"loss":`...)
		dst = strconv.AppendFloat(dst, e.Loss, 'g', -1, 64)
	}
	if e.Norm != 0 && !math.IsNaN(e.Norm) && !math.IsInf(e.Norm, 0) {
		dst = append(dst, `,"norm":`...)
		dst = strconv.AppendFloat(dst, e.Norm, 'g', -1, 64)
	}
	if e.Note != "" {
		dst = append(dst, `,"note":`...)
		dst = appendJSONString(dst, e.Note)
	}
	return append(dst, '}')
}

// appendJSONString appends s as a JSON string literal. Control characters,
// quotes and backslashes are escaped; invalid UTF-8 bytes are replaced
// with U+FFFD so the output is always valid JSON.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	for i := 0; i < len(s); {
		b := s[i]
		if b < utf8.RuneSelf {
			switch {
			case b == '"':
				dst = append(dst, '\\', '"')
			case b == '\\':
				dst = append(dst, '\\', '\\')
			case b == '\n':
				dst = append(dst, '\\', 'n')
			case b == '\r':
				dst = append(dst, '\\', 'r')
			case b == '\t':
				dst = append(dst, '\\', 't')
			case b < 0x20:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xf])
			default:
				dst = append(dst, b)
			}
			i++
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			dst = append(dst, `�`...)
			i++
			continue
		}
		dst = append(dst, s[i:i+size]...)
		i += size
	}
	return append(dst, '"')
}

const hexDigits = "0123456789abcdef"

// Reader decodes a trace stream record by record.
type Reader struct {
	br  *bufio.Reader
	buf []byte
	n   int // records decoded so far, for error context
}

// NewReader wraps r for record-at-a-time decoding.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 64<<10)}
}

// Next decodes the next record. It returns io.EOF at a clean end of
// stream, ErrTruncated when the stream ends mid-record (a torn tail), and
// ErrCorrupt for structural damage. After a non-EOF error the reader is
// not positioned to continue.
func (r *Reader) Next() (Event, error) {
	var e Event
	// Length prefix: decimal digits up to the separating space.
	length := -1
	for {
		b, err := r.br.ReadByte()
		if err != nil {
			if err == io.EOF {
				if length < 0 {
					return e, io.EOF // clean boundary
				}
				return e, fmt.Errorf("%w: EOF inside length prefix of record %d", ErrTruncated, r.n)
			}
			return e, err
		}
		if b == ' ' {
			if length < 0 {
				return e, fmt.Errorf("%w: record %d has an empty length prefix", ErrCorrupt, r.n)
			}
			break
		}
		if b < '0' || b > '9' {
			return e, fmt.Errorf("%w: record %d length prefix holds byte %q", ErrCorrupt, r.n, b)
		}
		if length < 0 {
			length = 0
		}
		length = length*10 + int(b-'0')
		if length > maxRecordLen {
			return e, fmt.Errorf("%w: record %d claims %d bytes (max %d)", ErrCorrupt, r.n, length, maxRecordLen)
		}
	}
	if cap(r.buf) < length+1 {
		r.buf = make([]byte, length+1)
	}
	buf := r.buf[:length+1] // body + trailing newline
	if _, err := io.ReadFull(r.br, buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return e, fmt.Errorf("%w: EOF inside body of record %d", ErrTruncated, r.n)
		}
		return e, err
	}
	if buf[length] != '\n' {
		return e, fmt.Errorf("%w: record %d not newline-terminated", ErrCorrupt, r.n)
	}
	e.Round, e.Client = -1, -1 // decode default for "not scoped"
	if err := json.Unmarshal(buf[:length], &e); err != nil {
		return e, fmt.Errorf("%w: record %d body: %v", ErrCorrupt, r.n, err)
	}
	if e.Kind == "" {
		return e, fmt.Errorf("%w: record %d has no event kind", ErrCorrupt, r.n)
	}
	r.n++
	return e, nil
}

// ReadAll decodes every record in r until end of stream. A torn tail
// (ErrTruncated) is reported alongside the records decoded before it so
// crash-cut traces remain usable; any other error discards nothing read
// so far but stops the scan.
func ReadAll(r io.Reader) ([]Event, error) {
	tr := NewReader(r)
	var events []Event
	for {
		e, err := tr.Next()
		if err == io.EOF {
			return events, nil
		}
		if err != nil {
			return events, err
		}
		events = append(events, e)
	}
}
