package trace

import (
	"sync"
	"time"
)

// Kind names a flight-recorder event. The set is closed: every producer in
// the runtimes emits one of these, and the offline tooling (calibre-trace)
// switches on them.
type Kind string

const (
	// KindRoundStart / KindRoundEnd bracket one federated round's span.
	// round_start carries N = sampled participants; round_end carries
	// N = aggregated responders, Dur = the span, Loss = the round's mean
	// local training loss.
	KindRoundStart Kind = "round_start"
	KindRoundEnd   Kind = "round_end"
	// KindClientDispatch marks the moment a participant's train request is
	// handed off (flnet: written to the wire; sim: local update started).
	KindClientDispatch Kind = "client_dispatch"
	// KindClientUpdate closes a client span: the participant's update was
	// accepted. Dur is the dispatch→accept turnaround, Wire/Bytes the
	// uplink encoding ("delta" or "dense") and payload cost, Loss the
	// client's local training loss.
	KindClientUpdate Kind = "client_update"
	// KindClientDrop records a participant that contributed nothing to the
	// round, attributed by Reason.
	KindClientDrop Kind = "client_drop"
	// KindCheckpointSave / KindResume are the durability boundary: a round
	// snapshot persisted, and a run continuing from one (Round = the first
	// round the continuation executes).
	KindCheckpointSave Kind = "checkpoint_save"
	KindResume         Kind = "resume"
	// KindCellStart / KindCellEnd bracket one sweep cell's span; Cell
	// carries the cell key, and every event a cell's simulation emits is
	// stamped with the same key so cell spans nest round spans even when
	// cells run concurrently. cell_end carries Note = the cell status.
	KindCellStart Kind = "cell_start"
	KindCellEnd   Kind = "cell_end"
)

// DropReason attributes a client_drop event.
type DropReason string

const (
	// DropTrace: a seeded availability trace made the client unavailable
	// before it could train (fl.TraceConfig).
	DropTrace DropReason = "trace"
	// DropStraggler: the client was dropped by the flat dropout model or
	// missed the round deadline under quorum aggregation.
	DropStraggler DropReason = "straggler"
	// DropRejected: the runtime rejected the client at ingress (wrong-size
	// or corrupt payload, protocol violation, transport failure).
	DropRejected DropReason = "rejected"
	// DropAdversarial: an ingress rejection whose sender is in the seeded
	// compromised set — the same failure as DropRejected, attributed to
	// the attack.
	DropAdversarial DropReason = "adversarial"
)

// Event is one flight-recorder record. Round and Client are -1 when the
// event is not scoped to a round or client; every other field is optional
// and omitted from the encoding when zero. TS is a monotonic timestamp in
// nanoseconds from the recorder's clock, so spans within one trace are
// directly comparable; with an injected clock the whole encoding is
// deterministic (see Config.Clock).
type Event struct {
	Kind    Kind       `json:"t"`
	TS      int64      `json:"ts"`
	Runtime string     `json:"rt,omitempty"`   // "sim" | "server" | "sweep"
	Cell    string     `json:"cell,omitempty"` // sweep cell key
	Round   int        `json:"round"`
	Client  int        `json:"client"`
	Reason  DropReason `json:"reason,omitempty"`
	Wire    string     `json:"wire,omitempty"` // "delta" | "dense"
	Bytes   int64      `json:"bytes,omitempty"`
	Dur     int64      `json:"dur_ns,omitempty"`
	N       int        `json:"n,omitempty"`
	Loss    float64    `json:"loss,omitempty"`
	// Norm is the L2 norm of the client's update against the round's
	// pre-aggregation global model. Runtimes stamp it on client_update
	// events when a health.Monitor is attached, which is what lets
	// calibre-doctor replay a trace through the update-norm detectors.
	Norm float64 `json:"norm,omitempty"`
	Note string  `json:"note,omitempty"`
}

// Clock returns a monotonic timestamp in nanoseconds. The default clock
// measures nanoseconds since the recorder was built (small, monotonic,
// process-local numbers); tests inject a deterministic clock so two runs
// of the same federation emit byte-identical traces.
type Clock func() int64

// StepClock returns a deterministic clock that starts at 0 and advances
// by step on every reading. It is safe only for single-goroutine use —
// exactly the regime the byte-identity tests pin (Parallelism 1).
func StepClock(step int64) Clock {
	var now int64
	return func() int64 {
		now += step
		return now - step
	}
}

// defaultRing bounds the in-memory event buffer between sink writes.
const defaultRing = 1024

// Config tunes a Recorder.
type Config struct {
	// Clock supplies timestamps; nil means monotonic nanoseconds since
	// the recorder was built.
	Clock Clock
	// RingSize bounds the event buffer (default 1024). The ring amortizes
	// sink writes: events accumulate in place and are encoded + written as
	// one batch when the ring fills (or on Flush/Close), so no event is
	// ever dropped and file order always equals emission order.
	RingSize int
}

// Recorder is the flight recorder: a bounded ring of Events draining into
// an append-only Sink as length-prefixed JSONL. All methods are safe for
// concurrent use and safe on a nil receiver (recording becomes a no-op),
// so runtimes instrument unconditionally — the same contract as
// obs.Registry. The hot path is allocation-disciplined: the ring and the
// encode scratch are preallocated and reused, and one Emit costs a short
// critical section plus, every RingSize events, one batched sink write.
type Recorder struct {
	c    *core
	cell string
}

// core is the state shared by a Recorder and its WithCell views.
type core struct {
	clock Clock
	sink  Sink

	mu   sync.Mutex
	ring []Event
	n    int
	scratch
	closed bool
	err    error // first sink error, sticky
}

// scratch holds the reused encode buffers.
type scratch struct {
	batch []byte // one flush's encoded bytes
	rec   []byte // one record's JSON body
}

// New builds a Recorder draining into sink. A nil sink yields a nil
// recorder (everything no-ops), so callers can thread an optional sink
// without branching.
func New(sink Sink, cfg Config) *Recorder {
	if sink == nil {
		return nil
	}
	clock := cfg.Clock
	if clock == nil {
		start := time.Now()
		clock = func() int64 { return time.Since(start).Nanoseconds() }
	}
	size := cfg.RingSize
	if size < 1 {
		size = defaultRing
	}
	return &Recorder{c: &core{clock: clock, sink: sink, ring: make([]Event, size)}}
}

// WithCell returns a view of the recorder that stamps cell onto every
// event emitted through it (unless the event already carries one). Views
// share the ring and sink; the sweep scheduler hands each cell's
// simulation its own view so cell spans nest round spans unambiguously
// even with concurrent cells. Nil-safe.
func (r *Recorder) WithCell(cell string) *Recorder {
	if r == nil {
		return nil
	}
	return &Recorder{c: r.c, cell: cell}
}

// Now reads the recorder's clock (0 on nil).
func (r *Recorder) Now() int64 {
	if r == nil {
		return 0
	}
	return r.c.clock()
}

// Emit appends one event to the ring, flushing the ring into the sink
// first when it is full. The caller sets TS explicitly (usually from
// Now, or from span endpoints it measured earlier); Emit never stamps
// time itself, which is what lets producers emit events in canonical
// order after the fact. No-op on nil.
func (r *Recorder) Emit(e Event) {
	if r == nil {
		return
	}
	if e.Cell == "" {
		e.Cell = r.cell
	}
	c := r.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	if c.n == len(c.ring) {
		c.flushLocked()
	}
	c.ring[c.n] = e
	c.n++
}

// Flush drains the ring into the sink and reports the first sink error
// seen so far. Nil-safe.
func (r *Recorder) Flush() error {
	if r == nil {
		return nil
	}
	c := r.c
	c.mu.Lock()
	defer c.mu.Unlock()
	c.flushLocked()
	return c.err
}

// Close flushes, closes the sink when it is closable, and makes further
// Emits no-ops. It returns the first error from the sink (write or
// close). Nil-safe; idempotent.
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	c := r.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return c.err
	}
	c.flushLocked()
	c.closed = true
	if cl, ok := c.sink.(interface{ Close() error }); ok {
		if err := cl.Close(); err != nil && c.err == nil {
			c.err = err
		}
	}
	return c.err
}

// flushLocked encodes the buffered events into the reused batch buffer
// and writes them to the sink in one call. Sink errors are sticky: the
// first one is kept and the recorder keeps accepting (and discarding)
// events so a broken disk never stalls a federation.
func (c *core) flushLocked() {
	if c.n == 0 {
		return
	}
	c.batch = c.batch[:0]
	for i := 0; i < c.n; i++ {
		c.batch, c.rec = appendRecord(c.batch, c.rec, &c.ring[i])
	}
	c.n = 0
	if c.err != nil {
		return
	}
	if _, err := c.sink.Write(c.batch); err != nil {
		c.err = err
	}
}
