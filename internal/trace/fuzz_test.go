package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzReader hardens the decoder against arbitrary byte streams: it must
// never panic, never allocate unboundedly (maxRecordLen), and classify
// every outcome as clean EOF, ErrTruncated, or ErrCorrupt. Whatever it
// does decode must re-encode and decode back to the same events —
// round-trip stability under hostile input.
func FuzzReader(f *testing.F) {
	// Well-formed stream seed.
	var sink memSink
	r := New(&sink, Config{Clock: StepClock(3)})
	r.Emit(Event{Kind: KindRoundStart, TS: r.Now(), Runtime: "sim", Round: 0, Client: -1, N: 2})
	r.Emit(Event{Kind: KindClientUpdate, TS: r.Now(), Round: 0, Client: 1, Wire: "delta", Bytes: 96, Dur: 12, Loss: 0.5})
	r.Emit(Event{Kind: KindClientDrop, TS: r.Now(), Round: 0, Client: 2, Reason: DropTrace})
	r.Emit(Event{Kind: KindCellEnd, TS: r.Now(), Round: -1, Client: -1, Cell: "method=x|seed=1", Note: "ok"})
	r.Close()
	f.Add(sink.Bytes())
	f.Add([]byte(""))
	f.Add([]byte("0 \n"))
	f.Add([]byte(`26 {"t":"resume","ts":5,"round":` + "\n"))
	f.Add([]byte("99999999999999999999 {}\n"))
	f.Add([]byte("12 {\"t\":\"x\"}\ngarbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := ReadAll(bytes.NewReader(data))
		if err != nil && err != io.EOF &&
			!errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) {
			t.Fatalf("unclassified decode error: %v", err)
		}
		// Round-trip: decoded events re-encode into a stream that decodes
		// to the same events.
		var enc, rec []byte
		for i := range events {
			enc, rec = appendRecord(enc, rec, &events[i])
		}
		again, err := ReadAll(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("re-encoded stream failed to decode: %v", err)
		}
		if len(again) != len(events) {
			t.Fatalf("round-trip count %d != %d", len(again), len(events))
		}
		for i := range events {
			if again[i] != events[i] {
				t.Fatalf("round-trip event %d: %+v != %+v", i, again[i], events[i])
			}
		}
	})
}
