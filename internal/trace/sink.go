package trace

import (
	"fmt"
	"os"
	"strconv"
)

// FileSink is the production Sink: an append-only trace file with
// optional size-bounded rotation. Rotation follows the same discipline as
// store.AtomicWriteFile — the live file is synced, then moved aside with
// same-directory renames (atomic on POSIX filesystems), so a crash during
// rotation never leaves a half-written or missing generation. Writes
// arrive from the Recorder as whole batches of framed records and a
// rotation only ever happens between batches, so no record spans files.
type FileSink struct {
	path string
	opts FileOptions
	f    *os.File
	size int64
}

// FileOptions tunes a FileSink.
type FileOptions struct {
	// RotateBytes rotates the live file once it would exceed this size
	// (0 = never rotate; the file grows without bound).
	RotateBytes int64
	// Keep is how many rotated generations to retain (path.1 … path.Keep,
	// newest first). 0 means 3 when rotation is enabled.
	Keep int
	// Truncate starts the trace fresh instead of appending to an
	// existing file. Resumed runs leave it false so the kill-and-resume
	// story keeps one continuous trace per output path.
	Truncate bool
}

// OpenFile opens (creating if needed) the trace file at path.
func OpenFile(path string, opts FileOptions) (*FileSink, error) {
	if opts.RotateBytes > 0 && opts.Keep < 1 {
		opts.Keep = 3
	}
	flags := os.O_CREATE | os.O_WRONLY | os.O_APPEND
	if opts.Truncate {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &FileSink{path: path, opts: opts, f: f, size: st.Size()}, nil
}

// Write appends one encoded batch, rotating first when the live file
// would overflow the configured bound. Recorder serializes calls, so
// FileSink needs no lock of its own.
func (s *FileSink) Write(p []byte) (int, error) {
	if s.opts.RotateBytes > 0 && s.size > 0 && s.size+int64(len(p)) > s.opts.RotateBytes {
		if err := s.rotate(); err != nil {
			return 0, err
		}
	}
	n, err := s.f.Write(p)
	s.size += int64(n)
	return n, err
}

// rotate moves the live file to path.1 after shifting older generations
// up (path.i → path.i+1, dropping path.Keep), then reopens a fresh live
// file. All renames stay within the trace file's directory.
func (s *FileSink) rotate() error {
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("trace: sync before rotate: %w", err)
	}
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("trace: close before rotate: %w", err)
	}
	gen := func(i int) string { return s.path + "." + strconv.Itoa(i) }
	os.Remove(gen(s.opts.Keep)) // oldest generation falls off; absent is fine
	for i := s.opts.Keep - 1; i >= 1; i-- {
		if err := os.Rename(gen(i), gen(i+1)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("trace: shift generation %d: %w", i, err)
		}
	}
	if err := os.Rename(s.path, gen(1)); err != nil {
		return fmt.Errorf("trace: rotate live file: %w", err)
	}
	f, err := os.OpenFile(s.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("trace: reopen after rotate: %w", err)
	}
	s.f, s.size = f, 0
	return nil
}

// Close syncs and closes the live file.
func (s *FileSink) Close() error {
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}
