package nn

import (
	"math"
	"math/rand"
	"testing"

	"calibre/internal/tensor"
)

func TestLinearShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear(rng, 5, 3, "fc")
	if l.In() != 5 || l.Out() != 3 {
		t.Fatalf("In/Out = %d/%d", l.In(), l.Out())
	}
	x := tensor.RandN(rng, 1, 7, 5)
	y := ForwardTensor(l, x)
	if y.Value.Rows() != 7 || y.Value.Cols() != 3 {
		t.Fatalf("output shape = %v", y.Value.Shape())
	}
	if len(l.Params()) != 2 {
		t.Fatalf("Linear should expose 2 params, got %d", len(l.Params()))
	}
}

func TestLinearGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewLinear(rng, 4, 3, "fc")
	x := tensor.RandN(rng, 1, 6, 4)
	gradCheck(t, l.Params(), func() *Node {
		return SumSquares(ForwardTensor(l, x))
	}, 1e-5)
}

func TestMLPStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := MLP(rng, "enc", 8, 16, 4)
	// Linear, ReLU, Linear
	if len(m.Layers) != 3 {
		t.Fatalf("MLP layers = %d, want 3", len(m.Layers))
	}
	if ParamCount(m) != 8*16+16+16*4+4 {
		t.Fatalf("ParamCount = %d", ParamCount(m))
	}
	x := tensor.RandN(rng, 1, 5, 8)
	y := ForwardTensor(m, x)
	if y.Value.Rows() != 5 || y.Value.Cols() != 4 {
		t.Fatalf("MLP output shape = %v", y.Value.Shape())
	}
}

func TestMLPPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MLP(rand.New(rand.NewSource(0)), "bad", 5)
}

func TestActivationPanicsOnUnknownKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(&Activation{Kind: 99}).Forward(Input(tensor.New(1, 1)))
}

func TestMLPGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := MLP(rng, "enc", 3, 5, 2)
	x := tensor.RandN(rng, 1, 4, 3)
	targets := []int{0, 1, 0, 1}
	gradCheck(t, m.Params(), func() *Node {
		return CrossEntropy(ForwardTensor(m, x), targets)
	}, 1e-4)
}

func TestPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l := NewLinear(rng, 2, 2, "head")
	l.W.Value.SetRow(0, []float64{1, 0})
	l.W.Value.SetRow(1, []float64{0, 1})
	l.B.Value.Zero()
	x := tensor.MustFromSlice([]float64{5, 1, 1, 5}, 2, 2)
	preds := Predict(l, x)
	if preds[0] != 0 || preds[1] != 1 {
		t.Fatalf("Predict = %v", preds)
	}
}

func TestFlattenUnflattenRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := MLP(rng, "m", 4, 6, 3)
	vec := Flatten(m)
	if len(vec) != ParamCount(m) {
		t.Fatalf("Flatten length %d, want %d", len(vec), ParamCount(m))
	}
	m2 := MLP(rand.New(rand.NewSource(99)), "m2", 4, 6, 3)
	if err := Unflatten(m2, vec); err != nil {
		t.Fatalf("Unflatten: %v", err)
	}
	vec2 := Flatten(m2)
	for i := range vec {
		if vec[i] != vec2[i] {
			t.Fatalf("roundtrip mismatch at %d", i)
		}
	}
	if err := Unflatten(m2, vec[:3]); err == nil {
		t.Fatal("Unflatten with wrong length should error")
	}
}

func TestCopyParamsAndErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := MLP(rng, "a", 3, 4, 2)
	b := MLP(rand.New(rand.NewSource(8)), "b", 3, 4, 2)
	if err := CopyParams(b, a); err != nil {
		t.Fatalf("CopyParams: %v", err)
	}
	va, vb := Flatten(a), Flatten(b)
	for i := range va {
		if va[i] != vb[i] {
			t.Fatal("CopyParams should make params identical")
		}
	}
	c := MLP(rng, "c", 3, 5, 2)
	if err := CopyParams(c, a); err == nil {
		t.Fatal("CopyParams with mismatched layout should error")
	}
}

func TestEMAUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	online := MLP(rng, "on", 2, 3, 2)
	target := MLP(rand.New(rand.NewSource(10)), "tg", 2, 3, 2)
	for _, p := range target.Params() {
		p.Value.Fill(0)
	}
	for _, p := range online.Params() {
		p.Value.Fill(1)
	}
	if err := EMAUpdate(target, online, 0.9); err != nil {
		t.Fatalf("EMAUpdate: %v", err)
	}
	for _, p := range target.Params() {
		for _, v := range p.Value.Data() {
			if !almost(v, 0.1, 1e-12) {
				t.Fatalf("EMA value = %v, want 0.1", v)
			}
		}
	}
	// m=1 freezes the target entirely.
	if err := EMAUpdate(target, online, 1.0); err != nil {
		t.Fatalf("EMAUpdate: %v", err)
	}
	for _, p := range target.Params() {
		for _, v := range p.Value.Data() {
			if !almost(v, 0.1, 1e-12) {
				t.Fatal("EMA with m=1 must not move")
			}
		}
	}
}

func TestAddToGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := MLP(rng, "m", 2, 2)
	ZeroGrads(m)
	vec := make([]float64, ParamCount(m))
	for i := range vec {
		vec[i] = float64(i)
	}
	if err := AddToGrads(m, vec, 2); err != nil {
		t.Fatalf("AddToGrads: %v", err)
	}
	g := FlattenGrads(m)
	for i := range g {
		if g[i] != 2*float64(i) {
			t.Fatalf("grad[%d] = %v", i, g[i])
		}
	}
	if err := AddToGrads(m, vec[:1], 1); err == nil {
		t.Fatal("AddToGrads with wrong length should error")
	}
}

func TestVecHelpers(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{3, 5}
	if got := VecAdd(a, b); got[0] != 4 || got[1] != 7 {
		t.Fatalf("VecAdd = %v", got)
	}
	if got := VecSub(b, a); got[0] != 2 || got[1] != 3 {
		t.Fatalf("VecSub = %v", got)
	}
	if got := VecScale(a, 3); got[0] != 3 || got[1] != 6 {
		t.Fatalf("VecScale = %v", got)
	}
	dst := []float64{1, 1}
	VecAxpy(dst, a, 2)
	if dst[0] != 3 || dst[1] != 5 {
		t.Fatalf("VecAxpy = %v", dst)
	}
	if got := VecLerp(a, b, 0.5); got[0] != 2 || got[1] != 3.5 {
		t.Fatalf("VecLerp = %v", got)
	}
	if !almost(VecNorm2([]float64{3, 4}), 5, 1e-12) {
		t.Fatal("VecNorm2")
	}
}

func TestSGDConvergesOnLinearRegression(t *testing.T) {
	// y = 2x + 1 learned by a 1→1 linear layer.
	rng := rand.New(rand.NewSource(12))
	l := NewLinear(rng, 1, 1, "reg")
	opt := NewSGD(l, 0.1, 0.9, 0)
	x := tensor.New(16, 1)
	y := tensor.New(16, 1)
	for i := 0; i < 16; i++ {
		xv := rng.Float64()*2 - 1
		x.Set(i, 0, xv)
		y.Set(i, 0, 2*xv+1)
	}
	for epoch := 0; epoch < 200; epoch++ {
		opt.ZeroGrad()
		loss := MSELoss(ForwardTensor(l, x), y)
		if err := Backward(loss); err != nil {
			t.Fatalf("Backward: %v", err)
		}
		opt.Step()
	}
	if w := l.W.Value.At(0, 0); math.Abs(w-2) > 0.05 {
		t.Fatalf("learned w = %v, want ≈2", w)
	}
	if b := l.B.Value.At(0, 0); math.Abs(b-1) > 0.05 {
		t.Fatalf("learned b = %v, want ≈1", b)
	}
}

func TestSGDWeightDecayShrinksWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	l := NewLinear(rng, 2, 2, "wd")
	before := VecNorm2(Flatten(l))
	opt := NewSGD(l, 0.1, 0, 0.5)
	opt.ZeroGrad() // zero gradient: only decay acts
	opt.Step()
	after := VecNorm2(Flatten(l))
	// Bias starts at zero so only W shrinks; total norm must decrease.
	if after >= before {
		t.Fatalf("weight decay should shrink norm: %v -> %v", before, after)
	}
}

func TestSGDClipGradNorm(t *testing.T) {
	l := &Linear{W: NewParam("w", 2, 2), B: NewParam("b", 1, 2)}
	l.W.Grad.Fill(3)
	l.B.Grad.Fill(4)
	opt := NewSGD(l, 0.1, 0, 0)
	pre := opt.ClipGradNorm(1.0)
	if pre <= 1 {
		t.Fatalf("pre-clip norm = %v, should exceed 1", pre)
	}
	var ss float64
	for _, p := range l.Params() {
		for _, g := range p.Grad.Data() {
			ss += g * g
		}
	}
	if got := math.Sqrt(ss); math.Abs(got-1) > 1e-9 {
		t.Fatalf("post-clip norm = %v, want 1", got)
	}
	// Below threshold: untouched.
	l.W.Grad.Fill(0.01)
	l.B.Grad.Fill(0.01)
	opt.ClipGradNorm(10)
	if l.W.Grad.At(0, 0) != 0.01 {
		t.Fatal("clip should not rescale small gradients")
	}
}

func TestSGDZeroGrad(t *testing.T) {
	l := &Linear{W: NewParam("w", 2, 2), B: NewParam("b", 1, 2)}
	l.W.Grad.Fill(5)
	opt := NewSGD(l, 0.1, 0, 0)
	opt.ZeroGrad()
	for _, g := range l.W.Grad.Data() {
		if g != 0 {
			t.Fatal("ZeroGrad must clear gradients")
		}
	}
}

func TestParamInitializers(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	p := NewParam("p", 50, 50)
	p.InitHe(rng, 50)
	var ss float64
	for _, v := range p.Value.Data() {
		ss += v * v
	}
	std := math.Sqrt(ss / float64(p.Value.Len()))
	want := math.Sqrt(2.0 / 50)
	if math.Abs(std-want)/want > 0.15 {
		t.Fatalf("He std = %v, want ≈%v", std, want)
	}
	p.InitUniform(rng, 0.3)
	for _, v := range p.Value.Data() {
		if v < -0.3 || v > 0.3 {
			t.Fatalf("uniform init out of range: %v", v)
		}
	}
}
