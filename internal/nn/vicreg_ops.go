package nn

import (
	"math"

	"calibre/internal/tensor"
)

// VarianceHinge returns (1/d)·Σ_j max(0, gamma - std_j) where std_j is the
// (Bessel-corrected) standard deviation of column j of x. VICReg's variance
// term: it keeps every embedding dimension "alive" by penalizing collapsed
// columns. eps stabilizes the square root.
func VarianceHinge(x *Node, gamma, eps float64) *Node {
	n, d := x.Value.Rows(), x.Value.Cols()
	if n < 2 {
		// Variance undefined; return a constant zero that still links x so
		// callers can Add it unconditionally.
		return newOp(x.tape.alloc(1, 1), func(*tensor.Tensor) {}, x)
	}
	means := x.Value.ColMeans()
	stds := make([]float64, d)
	var loss float64
	inv := 1 / float64(n-1)
	for j := 0; j < d; j++ {
		var ss float64
		for i := 0; i < n; i++ {
			dv := x.Value.At(i, j) - means[j]
			ss += dv * dv
		}
		stds[j] = math.Sqrt(ss*inv + eps)
		if stds[j] < gamma {
			loss += gamma - stds[j]
		}
	}
	loss /= float64(d)
	v := x.tape.alloc(1, 1)
	v.Set(0, 0, loss)
	return newOp(v, func(g *tensor.Tensor) {
		if !x.requiresGrad {
			return
		}
		gv := g.At(0, 0)
		gx := x.Grad()
		for j := 0; j < d; j++ {
			if stds[j] >= gamma {
				continue
			}
			scale := -gv / (float64(d) * stds[j] * float64(n-1))
			for i := 0; i < n; i++ {
				gx.Row(i)[j] += scale * (x.Value.At(i, j) - means[j])
			}
		}
	}, x)
}

// CovariancePenalty returns (1/d)·Σ_{i≠j} C_ij² where C is the covariance
// matrix of the rows of x. VICReg's covariance term: it decorrelates
// embedding dimensions so information spreads across the representation.
func CovariancePenalty(x *Node) *Node {
	n, d := x.Value.Rows(), x.Value.Cols()
	if n < 2 {
		return newOp(x.tape.alloc(1, 1), func(*tensor.Tensor) {}, x)
	}
	means := x.Value.ColMeans()
	centered := x.tape.alloc(n, d)
	for i := 0; i < n; i++ {
		row := x.Value.Row(i)
		crow := centered.Row(i)
		for j := 0; j < d; j++ {
			crow[j] = row[j] - means[j]
		}
	}
	inv := 1 / float64(n-1)
	cov := x.tape.alloc(d, d)
	tensor.MatMulTransAInto(cov, centered, centered) // centeredᵀ·centered
	var loss float64
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			cov.Set(i, j, cov.At(i, j)*inv)
			if i != j {
				c := cov.At(i, j)
				loss += c * c
			}
		}
	}
	loss /= float64(d)
	v := x.tape.alloc(1, 1)
	v.Set(0, 0, loss)
	return newOp(v, func(g *tensor.Tensor) {
		if !x.requiresGrad {
			return
		}
		gv := g.At(0, 0)
		// dL/dC_ij = (2/d)·C_ij off-diagonal; L depends on X via
		// C = (1/(n-1))·AᵀA with A the centered matrix, so
		// dL/dA = (2/(n-1))·A·G with symmetric off-diagonal G, and the
		// centering projector removes each column's mean gradient — which
		// is already zero here because G is applied to centered columns.
		gc := x.tape.alloc(d, d)
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				if i != j {
					gc.Set(i, j, 2*cov.At(i, j)/float64(d))
				}
			}
		}
		// dL/dA = (2/(n-1)) A·G  (factor 2 from G + Gᵀ with G symmetric).
		dA := x.tape.alloc(n, d)
		tensor.MatMulInto(dA, centered, gc)
		scale := gv * 2 * inv
		gx := x.Grad()
		// Column means of dA are zero (A's columns are centered and G has
		// zero diagonal contribution per column pair symmetric), but apply
		// the centering projector explicitly for exactness.
		colMeans := dA.ColMeans()
		for i := 0; i < n; i++ {
			grow := gx.Row(i)
			arow := dA.Row(i)
			for j := 0; j < d; j++ {
				grow[j] += scale * (arow[j] - colMeans[j])
			}
		}
	}, x)
}
