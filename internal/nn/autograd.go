// Package nn provides a small reverse-mode automatic-differentiation engine,
// neural-network layers, loss functions, and optimizers built on
// internal/tensor. It is the training substrate standing in for the deep
// learning framework used by the Calibre paper (see DESIGN.md §1).
//
// The engine is define-by-run: every operation on *Node values records a
// backward closure; calling Backward on a scalar loss node topologically
// sorts the reachable graph and accumulates gradients into the participating
// Params. Nodes derived only from constants (Input, Detach) are skipped.
//
// The matrix-product ops (MatMul, MatMulTransB and the Linear layer's
// forward/backward passes, plus the VICReg covariance ops) run on
// internal/tensor's shared cache-blocked parallel kernels. The pool is
// process-wide and deterministic, so forward and backward results are
// bit-identical regardless of tensor.SetWorkers, and training many clients
// concurrently (internal/fl) cannot oversubscribe the CPU.
package nn

import (
	"fmt"
	"math"

	"calibre/internal/tensor"
)

// Node is a value in the computation graph.
type Node struct {
	// Value is the forward result. It must not be mutated after creation.
	Value *tensor.Tensor

	grad         *tensor.Tensor
	parents      []*Node
	back         func(grad *tensor.Tensor)
	tape         *Tape
	requiresGrad bool
}

// Input wraps a constant tensor as a graph leaf through which no gradient
// flows.
func Input(t *tensor.Tensor) *Node {
	return &Node{Value: t}
}

// InputOn is Input with an allocation tape attached: every op derived from
// the returned leaf draws its output, gradient and scratch buffers from the
// tape's arena, and Tape.Reset reclaims them all when the step is done. A
// nil tape makes this identical to Input.
func InputOn(tp *Tape, t *tensor.Tensor) *Node {
	n := tp.node()
	n.Value = t
	n.tape = tp
	return n
}

// Detach returns a constant node holding n's value, cutting the gradient
// path (stop-gradient). The allocation tape, if any, carries over.
func Detach(n *Node) *Node {
	d := n.tape.node()
	d.Value = n.Value
	d.tape = n.tape
	return d
}

// RequiresGrad reports whether gradients flow through this node.
func (n *Node) RequiresGrad() bool { return n.requiresGrad }

// Grad returns the node's accumulated gradient tensor, allocating it on
// first use. For param nodes this aliases the Param's gradient.
func (n *Node) Grad() *tensor.Tensor {
	if n.grad == nil {
		n.grad = n.tape.allocLike(n.Value)
	}
	return n.grad
}

func anyRequiresGrad(nodes ...*Node) bool {
	for _, n := range nodes {
		if n.requiresGrad {
			return true
		}
	}
	return false
}

// tapeOf returns the first allocation tape found among nodes. Graphs are
// built per step from a single taped input set, so mixing tapes is not a
// supported configuration.
func tapeOf(nodes ...*Node) *Tape {
	for _, n := range nodes {
		if n != nil && n.tape != nil {
			return n.tape
		}
	}
	return nil
}

func newOp(value *tensor.Tensor, back func(g *tensor.Tensor), parents ...*Node) *Node {
	tp := tapeOf(parents...)
	n := tp.node()
	n.Value = value
	n.parents = parents
	n.tape = tp
	n.requiresGrad = anyRequiresGrad(parents...)
	if n.requiresGrad {
		n.back = back
	}
	return n
}

// Backward runs reverse-mode differentiation from loss, which must hold a
// single element (a scalar loss). Gradients accumulate into every Param
// reachable from loss; call Params' ZeroGrad (or SGD.ZeroGrad) between
// optimization steps.
func Backward(loss *Node) error {
	if loss.Value.Len() != 1 {
		return fmt.Errorf("nn: Backward requires a scalar loss, got shape %v", loss.Value.Shape())
	}
	if !loss.requiresGrad {
		return nil // loss does not depend on any parameter
	}
	order := topoSort(loss)
	loss.Grad().Data()[0] = 1
	// Reverse topological order: each node's grad is complete before its
	// backward closure distributes it to parents.
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		if n.back != nil {
			n.back(n.Grad())
		}
	}
	return nil
}

// sortFrame is an explicit DFS stack frame for topoSort (iterative to avoid
// goroutine-stack overflow on deep graphs).
type sortFrame struct {
	n    *Node
	next int
}

func topoSort(root *Node) []*Node {
	// On a taped graph the visited map and the order/stack slices are tape
	// scratch, reused across steps; untaped graphs allocate fresh.
	tp := root.tape
	var visited map[*Node]bool
	var order []*Node
	var stack []sortFrame
	if tp != nil {
		if tp.visited == nil {
			tp.visited = make(map[*Node]bool)
		} else {
			clear(tp.visited)
		}
		visited = tp.visited
		order, stack = tp.order[:0], tp.stack[:0]
	} else {
		visited = make(map[*Node]bool)
	}
	stack = append(stack, sortFrame{n: root})
	visited[root] = true
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		if top.next < len(top.n.parents) {
			p := top.n.parents[top.next]
			top.next++
			if !visited[p] && p.requiresGrad {
				visited[p] = true
				stack = append(stack, sortFrame{n: p})
			}
			continue
		}
		order = append(order, top.n)
		stack = stack[:len(stack)-1]
	}
	if tp != nil {
		// Keep the grown capacity for the next Backward. order is handed to
		// the caller, but Backward finishes with it before the next step.
		tp.order, tp.stack = order, stack[:0]
	}
	return order
}

// --- Arithmetic ops ---------------------------------------------------------

// Add returns a + b (same shapes).
func Add(a, b *Node) *Node {
	v := tapeOf(a, b).allocLike(a.Value)
	if err := tensor.AddInto(v, a.Value, b.Value); err != nil {
		panic(err) // shape bugs are programming errors inside the engine
	}
	return newOp(v, func(g *tensor.Tensor) {
		if a.requiresGrad {
			mustAddScaled(a.Grad(), g, 1)
		}
		if b.requiresGrad {
			mustAddScaled(b.Grad(), g, 1)
		}
	}, a, b)
}

// Sub returns a - b.
func Sub(a, b *Node) *Node {
	v := tapeOf(a, b).allocLike(a.Value)
	if err := tensor.SubInto(v, a.Value, b.Value); err != nil {
		panic(err)
	}
	return newOp(v, func(g *tensor.Tensor) {
		if a.requiresGrad {
			mustAddScaled(a.Grad(), g, 1)
		}
		if b.requiresGrad {
			mustAddScaled(b.Grad(), g, -1)
		}
	}, a, b)
}

// Scale returns a*c for scalar constant c.
func Scale(a *Node, c float64) *Node {
	v := a.tape.allocLike(a.Value)
	if err := tensor.ScaleInto(v, a.Value, c); err != nil {
		panic(err)
	}
	return newOp(v, func(g *tensor.Tensor) {
		if a.requiresGrad {
			mustAddScaled(a.Grad(), g, c)
		}
	}, a)
}

// MulElem returns the Hadamard product a∘b.
func MulElem(a, b *Node) *Node {
	v := tapeOf(a, b).allocLike(a.Value)
	if err := tensor.MulInto(v, a.Value, b.Value); err != nil {
		panic(err)
	}
	return newOp(v, func(g *tensor.Tensor) {
		if a.requiresGrad {
			ga, bd, gd := a.Grad().Data(), b.Value.Data(), g.Data()
			for i := range ga {
				ga[i] += gd[i] * bd[i]
			}
		}
		if b.requiresGrad {
			gb, ad, gd := b.Grad().Data(), a.Value.Data(), g.Data()
			for i := range gb {
				gb[i] += gd[i] * ad[i]
			}
		}
	}, a, b)
}

// MatMul returns a·b for 2-D nodes.
func MatMul(a, b *Node) *Node {
	if a.Value.Dims() != 2 || b.Value.Dims() != 2 || a.Value.Cols() != b.Value.Rows() {
		panic(fmt.Sprintf("nn: MatMul shape %v · %v", a.Value.Shape(), b.Value.Shape()))
	}
	tp := tapeOf(a, b)
	v := tp.alloc(a.Value.Rows(), b.Value.Cols())
	tensor.MatMulInto(v, a.Value, b.Value)
	return newOp(v, func(g *tensor.Tensor) {
		if a.requiresGrad {
			tmp := tp.allocLike(a.Value)
			tensor.MatMulTransBInto(tmp, g, b.Value) // g·bᵀ
			mustAddScaled(a.Grad(), tmp, 1)
		}
		if b.requiresGrad {
			tmp := tp.allocLike(b.Value)
			tensor.MatMulTransAInto(tmp, a.Value, g) // aᵀ·g
			mustAddScaled(b.Grad(), tmp, 1)
		}
	}, a, b)
}

// MatMulTransB returns a·bᵀ where a is (m×k) and b is (n×k), producing (m×n).
// This is the similarity-matrix primitive used by the contrastive losses.
func MatMulTransB(a, b *Node) *Node {
	m := a.Value.Rows()
	n := b.Value.Rows()
	if a.Value.Cols() != b.Value.Cols() {
		panic(fmt.Sprintf("nn: MatMulTransB inner dims %d vs %d", a.Value.Cols(), b.Value.Cols()))
	}
	tp := tapeOf(a, b)
	v := tp.alloc(m, n)
	tensor.MatMulTransBInto(v, a.Value, b.Value)
	return newOp(v, func(g *tensor.Tensor) {
		if a.requiresGrad {
			tmp := tp.allocLike(a.Value)
			tensor.MatMulInto(tmp, g, b.Value) // g·b
			mustAddScaled(a.Grad(), tmp, 1)
		}
		if b.requiresGrad {
			tmp := tp.allocLike(b.Value)
			tensor.MatMulTransAInto(tmp, g, a.Value) // gᵀ·a
			mustAddScaled(b.Grad(), tmp, 1)
		}
	}, a, b)
}

// AddBias adds bias vector b (a 1×n or n-element node) to every row of x
// (m×n).
func AddBias(x, bias *Node) *Node {
	bv := bias.Value.Data()
	v := tapeOf(x, bias).allocLike(x.Value)
	if err := tensor.AddRowVecInto(v, x.Value, bv); err != nil {
		panic(err)
	}
	return newOp(v, func(g *tensor.Tensor) {
		if x.requiresGrad {
			mustAddScaled(x.Grad(), g, 1)
		}
		if bias.requiresGrad {
			gb := bias.Grad().Data()
			m, n := g.Rows(), g.Cols()
			gd := g.Data()
			for i := 0; i < m; i++ {
				row := gd[i*n : (i+1)*n]
				for j := 0; j < n; j++ {
					gb[j] += row[j]
				}
			}
		}
	}, x, bias)
}

// --- Activations ------------------------------------------------------------

// ReLU applies max(0, x) elementwise.
func ReLU(x *Node) *Node {
	v := x.tape.allocLike(x.Value)
	mustApplyInto(v, x.Value, func(f float64) float64 {
		if f > 0 {
			return f
		}
		return 0
	})
	return newOp(v, func(g *tensor.Tensor) {
		if !x.requiresGrad {
			return
		}
		gx, xd, gd := x.Grad().Data(), x.Value.Data(), g.Data()
		for i := range gx {
			if xd[i] > 0 {
				gx[i] += gd[i]
			}
		}
	}, x)
}

// Tanh applies tanh elementwise.
func Tanh(x *Node) *Node {
	v := x.tape.allocLike(x.Value)
	mustApplyInto(v, x.Value, math.Tanh)
	return newOp(v, func(g *tensor.Tensor) {
		if !x.requiresGrad {
			return
		}
		gx, vd, gd := x.Grad().Data(), v.Data(), g.Data()
		for i := range gx {
			gx[i] += gd[i] * (1 - vd[i]*vd[i])
		}
	}, x)
}

// --- Row-wise geometry ------------------------------------------------------

const normEps = 1e-12

// L2NormalizeRows scales each row of x to unit Euclidean norm (rows with
// norm < 1e-12 pass through unchanged).
func L2NormalizeRows(x *Node) *Node {
	v := x.tape.allocLike(x.Value)
	if err := tensor.L2NormalizeRowsInto(v, x.Value, normEps); err != nil {
		panic(err)
	}
	return newOp(v, func(g *tensor.Tensor) {
		if !x.requiresGrad {
			return
		}
		m, n := x.Value.Rows(), x.Value.Cols()
		gx := x.Grad()
		for i := 0; i < m; i++ {
			xrow := x.Value.Row(i)
			yrow := v.Row(i)
			grow := g.Row(i)
			gxrow := gx.Row(i)
			norm := tensor.Norm2(xrow)
			if norm < normEps {
				for j := 0; j < n; j++ {
					gxrow[j] += grow[j]
				}
				continue
			}
			gy := tensor.Dot(grow, yrow)
			inv := 1 / norm
			for j := 0; j < n; j++ {
				gxrow[j] += (grow[j] - gy*yrow[j]) * inv
			}
		}
	}, x)
}

// --- Structural ops ---------------------------------------------------------

// ConcatRows stacks a (ma×n) on top of b (mb×n), producing ((ma+mb)×n).
func ConcatRows(a, b *Node) *Node {
	if a.Value.Cols() != b.Value.Cols() {
		panic(fmt.Sprintf("nn: ConcatRows col mismatch %d vs %d", a.Value.Cols(), b.Value.Cols()))
	}
	ma, mb, n := a.Value.Rows(), b.Value.Rows(), a.Value.Cols()
	v := tapeOf(a, b).alloc(ma+mb, n)
	copy(v.Data()[:ma*n], a.Value.Data())
	copy(v.Data()[ma*n:], b.Value.Data())
	return newOp(v, func(g *tensor.Tensor) {
		gd := g.Data()
		if a.requiresGrad {
			ga := a.Grad().Data()
			for i := range ga {
				ga[i] += gd[i]
			}
		}
		if b.requiresGrad {
			gb := b.Grad().Data()
			off := ma * n
			for i := range gb {
				gb[i] += gd[off+i]
			}
		}
	}, a, b)
}

// ConcatCols places a (m×na) to the left of b (m×nb), producing (m×(na+nb)).
func ConcatCols(a, b *Node) *Node {
	if a.Value.Rows() != b.Value.Rows() {
		panic(fmt.Sprintf("nn: ConcatCols row mismatch %d vs %d", a.Value.Rows(), b.Value.Rows()))
	}
	m, na, nb := a.Value.Rows(), a.Value.Cols(), b.Value.Cols()
	v := tapeOf(a, b).alloc(m, na+nb)
	for i := 0; i < m; i++ {
		copy(v.Row(i)[:na], a.Value.Row(i))
		copy(v.Row(i)[na:], b.Value.Row(i))
	}
	return newOp(v, func(g *tensor.Tensor) {
		for i := 0; i < m; i++ {
			grow := g.Row(i)
			if a.requiresGrad {
				garow := a.Grad().Row(i)
				for j := 0; j < na; j++ {
					garow[j] += grow[j]
				}
			}
			if b.requiresGrad {
				gbrow := b.Grad().Row(i)
				for j := 0; j < nb; j++ {
					gbrow[j] += grow[na+j]
				}
			}
		}
	}, a, b)
}

// GatherRows selects the given rows of x into a new (len(idx)×n) node.
// Duplicate indices are allowed; gradients accumulate.
func GatherRows(x *Node, idx []int) *Node {
	n := x.Value.Cols()
	v := x.tape.alloc(len(idx), n)
	for i, r := range idx {
		copy(v.Row(i), x.Value.Row(r))
	}
	rows := append([]int(nil), idx...)
	return newOp(v, func(g *tensor.Tensor) {
		if !x.requiresGrad {
			return
		}
		gx := x.Grad()
		for i, r := range rows {
			grow := g.Row(i)
			gxrow := gx.Row(r)
			for j := 0; j < n; j++ {
				gxrow[j] += grow[j]
			}
		}
	}, x)
}

// GroupMean averages the rows of x within each group, producing a
// (len(groups)×n) node. Empty groups yield a zero row. This is the
// prototype-construction primitive: prototypes are differentiable means of
// member encodings.
func GroupMean(x *Node, groups [][]int) *Node {
	n := x.Value.Cols()
	v := x.tape.alloc(len(groups), n)
	for k, grp := range groups {
		if len(grp) == 0 {
			continue
		}
		row := v.Row(k)
		for _, r := range grp {
			xr := x.Value.Row(r)
			for j := 0; j < n; j++ {
				row[j] += xr[j]
			}
		}
		inv := 1 / float64(len(grp))
		for j := 0; j < n; j++ {
			row[j] *= inv
		}
	}
	captured := make([][]int, len(groups))
	for k, grp := range groups {
		captured[k] = append([]int(nil), grp...)
	}
	return newOp(v, func(g *tensor.Tensor) {
		if !x.requiresGrad {
			return
		}
		gx := x.Grad()
		for k, grp := range captured {
			if len(grp) == 0 {
				continue
			}
			inv := 1 / float64(len(grp))
			grow := g.Row(k)
			for _, r := range grp {
				gxrow := gx.Row(r)
				for j := 0; j < n; j++ {
					gxrow[j] += grow[j] * inv
				}
			}
		}
	}, x)
}

// RowDotConst returns the per-row dot product of x with constant rows c,
// as an (m×1) node. c must have the same shape as x.Value.
func RowDotConst(x *Node, c *tensor.Tensor) *Node {
	if !tensor.SameShape(x.Value, c) {
		panic(fmt.Sprintf("nn: RowDotConst shape %v vs %v", x.Value.Shape(), c.Shape()))
	}
	m := x.Value.Rows()
	v := x.tape.alloc(m, 1)
	for i := 0; i < m; i++ {
		v.Set(i, 0, tensor.Dot(x.Value.Row(i), c.Row(i)))
	}
	return newOp(v, func(g *tensor.Tensor) {
		if !x.requiresGrad {
			return
		}
		gx := x.Grad()
		n := x.Value.Cols()
		for i := 0; i < m; i++ {
			gi := g.At(i, 0)
			crow := c.Row(i)
			gxrow := gx.Row(i)
			for j := 0; j < n; j++ {
				gxrow[j] += gi * crow[j]
			}
		}
	}, x)
}

// Mean reduces all elements of x to their arithmetic mean (1×1 node).
func Mean(x *Node) *Node {
	v := x.tape.alloc(1, 1)
	v.Set(0, 0, x.Value.Mean())
	cnt := float64(x.Value.Len())
	return newOp(v, func(g *tensor.Tensor) {
		if !x.requiresGrad || cnt == 0 {
			return
		}
		gv := g.At(0, 0) / cnt
		gx := x.Grad().Data()
		for i := range gx {
			gx[i] += gv
		}
	}, x)
}

// SumSquares returns Σ x² as a scalar node.
func SumSquares(x *Node) *Node {
	var s float64
	for _, f := range x.Value.Data() {
		s += f * f
	}
	v := x.tape.alloc(1, 1)
	v.Set(0, 0, s)
	return newOp(v, func(g *tensor.Tensor) {
		if !x.requiresGrad {
			return
		}
		gv := g.At(0, 0)
		gx, xd := x.Grad().Data(), x.Value.Data()
		for i := range gx {
			gx[i] += 2 * gv * xd[i]
		}
	}, x)
}

func mustAddScaled(dst, src *tensor.Tensor, s float64) {
	if err := tensor.AddScaled(dst, src, s); err != nil {
		panic(err)
	}
}

func mustApplyInto(dst, a *tensor.Tensor, f func(float64) float64) {
	if err := tensor.ApplyInto(dst, a, f); err != nil {
		panic(err)
	}
}
