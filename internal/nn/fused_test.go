package nn

import (
	"math"
	"math/rand"
	"testing"

	"calibre/internal/tensor"
)

// fusedTestNet builds a Sequential exercising all three fusion shapes:
// Linear+ReLU, Linear+Tanh, and a trailing Linear with no activation.
func fusedTestNet(seed int64) *Sequential {
	rng := rand.New(rand.NewSource(seed))
	return &Sequential{Layers: []Layer{
		NewLinear(rng, 8, 16, "f.l0"),
		&Activation{Kind: ActReLU},
		NewLinear(rng, 16, 12, "f.l1"),
		&Activation{Kind: ActTanh},
		NewLinear(rng, 12, 4, "f.l2"),
	}}
}

func runNet(t *testing.T, net *Sequential, x *tensor.Tensor) (loss float64, value, grads []float64) {
	t.Helper()
	for _, p := range net.Params() {
		p.ZeroGrad()
	}
	out := net.Forward(Input(x))
	l := SumSquares(out)
	if err := Backward(l); err != nil {
		t.Fatalf("Backward: %v", err)
	}
	return l.Value.At(0, 0), append([]float64(nil), out.Value.Data()...), FlattenGrads(net)
}

// TestFusedBitIdenticalToUnfused is the determinism pin for the fused
// LinearAct kernels: with identical parameters and input, the fused and
// unfused (MatMul+AddBias+activation) paths produce bit-identical forward
// values, loss, and parameter gradients — 0 ULP, at every kernel worker
// count.
func TestFusedBitIdenticalToUnfused(t *testing.T) {
	defer SetFused(SetFused(true))
	defer tensor.SetWorkers(tensor.Workers())

	net := fusedTestNet(41)
	x := tensor.RandN(rand.New(rand.NewSource(42)), 1, 7, 8)

	for _, workers := range []int{1, 2, 4} {
		tensor.SetWorkers(workers)

		SetFused(false)
		wantLoss, wantVal, wantGrads := runNet(t, net, x)
		SetFused(true)
		gotLoss, gotVal, gotGrads := runNet(t, net, x)

		if math.Float64bits(gotLoss) != math.Float64bits(wantLoss) {
			t.Fatalf("workers=%d: fused loss %v, unfused %v", workers, gotLoss, wantLoss)
		}
		for i := range wantVal {
			if math.Float64bits(gotVal[i]) != math.Float64bits(wantVal[i]) {
				t.Fatalf("workers=%d: forward value %d differs: %v vs %v", workers, i, gotVal[i], wantVal[i])
			}
		}
		for i := range wantGrads {
			if math.Float64bits(gotGrads[i]) != math.Float64bits(wantGrads[i]) {
				t.Fatalf("workers=%d: gradient %d differs: %v vs %v", workers, i, gotGrads[i], wantGrads[i])
			}
		}
	}
}

// TestLinearActMatchesUnfusedChain checks the kernel directly (not through
// Sequential's peephole) for each activation kind, including the gradient
// flowing to a taped input node.
func TestLinearActMatchesUnfusedChain(t *testing.T) {
	defer SetFused(SetFused(true))
	rng := rand.New(rand.NewSource(5))
	w := randParam(rng, "w", 6, 3)
	b := randParam(rng, "b", 1, 3)
	x := tensor.RandN(rng, 1, 4, 6)

	unfused := func(xn *Node, act ActKind) *Node {
		pre := AddBias(MatMul(xn, w.Node()), b.Node())
		switch act {
		case ActReLU:
			return ReLU(pre)
		case ActTanh:
			return Tanh(pre)
		default:
			return pre
		}
	}
	for _, act := range []ActKind{ActNone, ActReLU, ActTanh} {
		w.ZeroGrad()
		b.ZeroGrad()
		ref := unfused(Input(x), act)
		if err := Backward(SumSquares(ref)); err != nil {
			t.Fatalf("unfused backward: %v", err)
		}
		wantW := append([]float64(nil), w.Grad.Data()...)
		wantB := append([]float64(nil), b.Grad.Data()...)

		w.ZeroGrad()
		b.ZeroGrad()
		got := LinearAct(Input(x), w.Node(), b.Node(), act)
		if err := Backward(SumSquares(got)); err != nil {
			t.Fatalf("fused backward: %v", err)
		}
		for i := range ref.Value.Data() {
			if math.Float64bits(got.Value.Data()[i]) != math.Float64bits(ref.Value.Data()[i]) {
				t.Fatalf("act=%d: value %d differs", act, i)
			}
		}
		for i := range wantW {
			if math.Float64bits(w.Grad.Data()[i]) != math.Float64bits(wantW[i]) {
				t.Fatalf("act=%d: W grad %d differs", act, i)
			}
		}
		for i := range wantB {
			if math.Float64bits(b.Grad.Data()[i]) != math.Float64bits(wantB[i]) {
				t.Fatalf("act=%d: B grad %d differs", act, i)
			}
		}
	}
}

func TestLinearActShapePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	w := randParam(rng, "w", 6, 3)
	b := randParam(rng, "b", 1, 3)
	x := Input(tensor.RandN(rng, 1, 4, 5)) // 5 != 6
	assertPanics := func(what string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", what)
			}
		}()
		f()
	}
	assertPanics("mismatched input", func() { LinearAct(x, w.Node(), b.Node(), ActNone) })
	x6 := Input(tensor.RandN(rng, 1, 4, 6))
	bad := randParam(rng, "bad", 1, 2)
	assertPanics("mismatched bias", func() { LinearAct(x6, w.Node(), bad.Node(), ActNone) })
	assertPanics("unknown activation", func() { LinearAct(x6, w.Node(), b.Node(), ActKind(99)) })
}

// TestTapeLifecycle pins the tape/arena contract the training loop relies
// on: every buffer a taped graph allocates is tracked, Reset returns them
// all, and the next step's graph is served from the free list.
func TestTapeLifecycle(t *testing.T) {
	defer SetFused(SetFused(true))
	arena := tensor.NewArena()
	tp := NewTape(arena)
	net := fusedTestNet(51)
	x := tensor.RandN(rand.New(rand.NewSource(52)), 1, 5, 8)

	step := func() float64 {
		for _, p := range net.Params() {
			p.ZeroGrad()
		}
		loss := SumSquares(net.Forward(InputOn(tp, x)))
		if err := Backward(loss); err != nil {
			t.Fatalf("Backward: %v", err)
		}
		return loss.Value.At(0, 0)
	}

	l1 := step()
	if tp.Live() == 0 {
		t.Fatal("taped graph tracked no tensors")
	}
	if arena.Stats().Outstanding == 0 {
		t.Fatal("taped graph borrowed nothing from the arena")
	}
	tp.Reset()
	if tp.Live() != 0 {
		t.Fatalf("Live() = %d after Reset", tp.Live())
	}
	if out := arena.Stats().Outstanding; out != 0 {
		t.Fatalf("arena outstanding = %d after Reset", out)
	}

	before := arena.Stats()
	l2 := step()
	tp.Reset()
	after := arena.Stats()
	if after.Hits == before.Hits {
		t.Fatal("second step hit the free list zero times")
	}
	// Params were not stepped between the two passes, so the loss must be
	// bit-identical — recycled buffers behave exactly like fresh ones.
	if math.Float64bits(l1) != math.Float64bits(l2) {
		t.Fatalf("arena-recycled step loss %v differs from first step %v", l2, l1)
	}

	// Nil tapes and tapes over nil arenas degrade to plain allocation.
	var nilTape *Tape
	nilTape.Reset()
	if nilTape.Live() != 0 {
		t.Fatal("nil tape Live() != 0")
	}
	heapTape := NewTape(nil)
	loss := SumSquares(net.Forward(InputOn(heapTape, x)))
	if loss == nil || heapTape.Live() != 0 {
		t.Fatalf("heap tape tracked %d tensors, want 0", heapTape.Live())
	}
	heapTape.Reset()
}

func TestSetFusedToggle(t *testing.T) {
	orig := Fused()
	defer SetFused(orig)
	if prev := SetFused(false); prev != orig {
		t.Fatalf("SetFused returned %v, want %v", prev, orig)
	}
	if Fused() {
		t.Fatal("Fused() true after SetFused(false)")
	}
	if prev := SetFused(true); prev {
		t.Fatal("SetFused returned true, want false")
	}
}
