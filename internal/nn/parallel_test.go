package nn

import (
	"math"
	"math/rand"
	"testing"

	"calibre/internal/tensor"
)

// trainStepGrads runs one forward/backward of a batch through an MLP big
// enough to cross tensor's parallel threshold and returns the flattened
// parameter gradients.
func trainStepGrads(t *testing.T, workers int) []float64 {
	t.Helper()
	tensor.SetWorkers(workers)
	t.Cleanup(func() { tensor.SetWorkers(0) })
	rng := rand.New(rand.NewSource(99))
	m := MLP(rng, "det", 192, 160, 96, 10)
	x := tensor.RandN(rng, 1, 96, 192)
	targets := make([]int, 96)
	for i := range targets {
		targets[i] = rng.Intn(10)
	}
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
	loss := CrossEntropy(ForwardTensor(m, x), targets)
	if err := Backward(loss); err != nil {
		t.Fatal(err)
	}
	var grads []float64
	for _, p := range m.Params() {
		grads = append(grads, p.Grad.Data()...)
	}
	return grads
}

// TestTrainStepDeterministicAcrossWorkerCounts asserts the end-to-end
// guarantee the tensor kernels promise: a whole Linear forward/backward pass
// produces bit-identical gradients whether the kernel pool has 1 worker or
// many.
func TestTrainStepDeterministicAcrossWorkerCounts(t *testing.T) {
	ref := trainStepGrads(t, 1)
	for _, workers := range []int{2, 4} {
		got := trainStepGrads(t, workers)
		if len(got) != len(ref) {
			t.Fatalf("grad length %d vs %d", len(got), len(ref))
		}
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(ref[i]) {
				t.Fatalf("workers=%d: grad[%d] = %x, want %x", workers, i, got[i], ref[i])
			}
		}
	}
}
