package nn

import (
	"fmt"
	"math"
	"sync/atomic"

	"calibre/internal/tensor"
)

// fusedEnabled gates the fused Linear forward/backward kernels. On by
// default; the unfused three-node path is kept as the bit-identity reference
// for property tests and for the hotpath benchmark baseline.
var fusedEnabled atomic.Bool

func init() { fusedEnabled.Store(true) }

// SetFused toggles the fused Linear kernels process-wide and returns the
// previous setting. Fused and unfused paths are bit-identical (see the
// determinism table in ARCHITECTURE.md); the toggle exists so tests can pin
// that equivalence and benchmarks can measure the allocation win.
func SetFused(on bool) bool { return fusedEnabled.Swap(on) }

// Fused reports whether the fused Linear kernels are active.
func Fused() bool { return fusedEnabled.Load() }

// LinearAct is the fused affine+activation kernel: one graph node computing
// act(x·W + b) where x is (m×k), w is (k×n) and bias holds n elements.
// ActNone skips the activation. The unfused equivalent records three nodes
// (MatMul, AddBias, ReLU/Tanh) with two intermediate tensors; the fused node
// computes bias-add and activation in place on the MatMul output and runs a
// single backward closure:
//
//	gPre    = g ∘ act'(y)     (activation gradient, from the output y)
//	b.grad += column-sums of gPre
//	x.grad += gPre·Wᵀ
//	W.grad += xᵀ·gPre
//
// Every operation reproduces the unfused ops' arithmetic in the same
// accumulation order, so results are bit-identical to the three-node chain —
// 0-ULP, at any kernel worker count (the matrix products are the same
// deterministic tensor kernels).
func LinearAct(x, w, bias *Node, act ActKind) *Node {
	m, k := x.Value.Rows(), x.Value.Cols()
	if w.Value.Dims() != 2 || w.Value.Rows() != k {
		panic(fmt.Sprintf("nn: LinearAct weight shape %v for input %v", w.Value.Shape(), x.Value.Shape()))
	}
	n := w.Value.Cols()
	if bias.Value.Len() != n {
		panic(fmt.Sprintf("nn: LinearAct bias has %d elements, want %d", bias.Value.Len(), n))
	}
	tp := tapeOf(x, w, bias)
	y := tp.alloc(m, n)
	tensor.MatMulInto(y, x.Value, w.Value)
	yd := y.Data()
	bd := bias.Value.Data()
	for i := 0; i < m; i++ {
		row := yd[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			row[j] += bd[j]
		}
	}
	switch act {
	case ActNone:
	case ActReLU:
		for i := range yd {
			if yd[i] <= 0 {
				yd[i] = 0
			}
		}
	case ActTanh:
		for i := range yd {
			yd[i] = math.Tanh(yd[i])
		}
	default:
		panic(fmt.Sprintf("nn: unknown activation kind %d", act))
	}
	return newOp(y, func(g *tensor.Tensor) {
		gPre := g
		if act != ActNone {
			// ReLU's pre-activation sign is recoverable from the output
			// (y>0 ⇔ pre>0) and Tanh's derivative uses the output, so no
			// pre-activation tensor needs to be kept.
			gPre = tp.alloc(m, n)
			pd, gd := gPre.Data(), g.Data()
			switch act {
			case ActReLU:
				for i := range pd {
					if yd[i] > 0 {
						pd[i] = gd[i]
					}
				}
			case ActTanh:
				for i := range pd {
					pd[i] = gd[i] * (1 - yd[i]*yd[i])
				}
			}
		}
		if bias.requiresGrad {
			gb := bias.Grad().Data()
			pd := gPre.Data()
			for i := 0; i < m; i++ {
				row := pd[i*n : (i+1)*n]
				for j := 0; j < n; j++ {
					gb[j] += row[j]
				}
			}
		}
		if x.requiresGrad {
			tmp := tp.allocLike(x.Value)
			tensor.MatMulTransBInto(tmp, gPre, w.Value) // gPre·Wᵀ
			mustAddScaled(x.Grad(), tmp, 1)
		}
		if w.requiresGrad {
			tmp := tp.allocLike(w.Value)
			tensor.MatMulTransAInto(tmp, x.Value, gPre) // xᵀ·gPre
			mustAddScaled(w.Grad(), tmp, 1)
		}
	}, x, w, bias)
}
