package nn

import (
	"math"

	"calibre/internal/tensor"
)

// SGD is stochastic gradient descent with optional classical momentum and
// decoupled weight decay. The zero value is unusable; construct with NewSGD.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	params   []*Param
	velocity []*tensor.Tensor
}

// NewSGD creates an SGD optimizer over m's parameters.
func NewSGD(m Module, lr, momentum, weightDecay float64) *SGD {
	params := m.Params()
	s := &SGD{
		LR:          lr,
		Momentum:    momentum,
		WeightDecay: weightDecay,
		params:      params,
	}
	if momentum != 0 {
		s.velocity = make([]*tensor.Tensor, len(params))
		for i, p := range params {
			s.velocity[i] = tensor.NewLike(p.Value)
		}
	}
	return s
}

// Step applies one update using the currently accumulated gradients.
func (s *SGD) Step() {
	for i, p := range s.params {
		v := p.Value.Data()
		g := p.Grad.Data()
		if s.Momentum != 0 {
			vel := s.velocity[i].Data()
			for j := range v {
				grad := g[j] + s.WeightDecay*v[j]
				vel[j] = s.Momentum*vel[j] + grad
				v[j] -= s.LR * vel[j]
			}
			continue
		}
		for j := range v {
			grad := g[j] + s.WeightDecay*v[j]
			v[j] -= s.LR * grad
		}
	}
}

// ZeroGrad clears all parameter gradients.
func (s *SGD) ZeroGrad() {
	for _, p := range s.params {
		p.ZeroGrad()
	}
}

// ClipGradNorm rescales gradients so their global L2 norm does not exceed
// maxNorm. It returns the pre-clip norm. Contrastive losses occasionally
// produce spiky gradients early in training; clipping keeps the small-batch
// runs stable.
func (s *SGD) ClipGradNorm(maxNorm float64) float64 {
	var ss float64
	for _, p := range s.params {
		for _, g := range p.Grad.Data() {
			ss += g * g
		}
	}
	norm := math.Sqrt(ss)
	if norm <= maxNorm || norm == 0 {
		return norm
	}
	scale := maxNorm / norm
	for _, p := range s.params {
		g := p.Grad.Data()
		for j := range g {
			g[j] *= scale
		}
	}
	return norm
}
