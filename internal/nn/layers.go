package nn

import (
	"fmt"
	"math/rand"

	"calibre/internal/tensor"
)

// Layer is a module that transforms a batch node.
type Layer interface {
	Module
	Forward(x *Node) *Node
}

// Linear is a fully connected layer computing y = x·W + b, with W shaped
// (in×out).
type Linear struct {
	W *Param
	B *Param
}

var _ Layer = (*Linear)(nil)

// NewLinear builds a Linear layer with He-normal weights and zero bias.
func NewLinear(rng *rand.Rand, in, out int, name string) *Linear {
	l := &Linear{
		W: NewParam(name+".W", in, out),
		B: NewParam(name+".B", 1, out),
	}
	l.W.InitHe(rng, in)
	return l
}

// Forward applies the affine map to a (batch×in) node. With the fused
// kernels enabled (the default) this records a single LinearAct node;
// otherwise the reference MatMul+AddBias pair. Both paths are bit-identical.
func (l *Linear) Forward(x *Node) *Node {
	if Fused() {
		return LinearAct(x, l.W.Node(), l.B.Node(), ActNone)
	}
	return AddBias(MatMul(x, l.W.Node()), l.B.Node())
}

// Params returns [W, B].
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }

// In returns the input dimension.
func (l *Linear) In() int { return l.W.Value.Rows() }

// Out returns the output dimension.
func (l *Linear) Out() int { return l.W.Value.Cols() }

// Activation is a parameter-free layer applying a pointwise nonlinearity.
type Activation struct {
	Kind ActKind
}

// ActKind selects an activation function.
type ActKind int

// Supported activation kinds. ActNone (the zero value) is accepted only by
// the fused LinearAct kernel, where it means "affine map, no nonlinearity".
const (
	ActNone ActKind = iota
	ActReLU
	ActTanh
)

var _ Layer = (*Activation)(nil)

// Forward applies the activation.
func (a *Activation) Forward(x *Node) *Node {
	switch a.Kind {
	case ActReLU:
		return ReLU(x)
	case ActTanh:
		return Tanh(x)
	default:
		panic(fmt.Sprintf("nn: unknown activation kind %d", a.Kind))
	}
}

// Params returns nil; activations are parameter-free.
func (a *Activation) Params() []*Param { return nil }

// Sequential chains layers.
type Sequential struct {
	Layers []Layer
}

var _ Layer = (*Sequential)(nil)

// Forward applies each layer in order. With the fused kernels enabled, a
// Linear layer immediately followed by an Activation is peephole-fused into
// one LinearAct node — bit-identical to the layer-by-layer pass, but with
// one node and one output buffer instead of three.
func (s *Sequential) Forward(x *Node) *Node {
	for i := 0; i < len(s.Layers); i++ {
		if lin, ok := s.Layers[i].(*Linear); ok && Fused() {
			act := ActNone
			if i+1 < len(s.Layers) {
				if a, ok := s.Layers[i+1].(*Activation); ok {
					act = a.Kind
					i++
				}
			}
			x = LinearAct(x, lin.W.Node(), lin.B.Node(), act)
			continue
		}
		x = s.Layers[i].Forward(x)
	}
	return x
}

// Params concatenates the parameters of all layers in order.
func (s *Sequential) Params() []*Param {
	var out []*Param
	for _, l := range s.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// MLP builds a multi-layer perceptron with ReLU between hidden layers and a
// linear final layer. dims = [in, h1, ..., out]; it must contain at least
// two entries.
func MLP(rng *rand.Rand, name string, dims ...int) *Sequential {
	if len(dims) < 2 {
		panic("nn: MLP needs at least [in, out] dims")
	}
	s := &Sequential{Layers: make([]Layer, 0, 2*len(dims)-3)}
	for i := 0; i < len(dims)-1; i++ {
		s.Layers = append(s.Layers, NewLinear(rng, dims[i], dims[i+1], fmt.Sprintf("%s.l%d", name, i)))
		if i < len(dims)-2 {
			s.Layers = append(s.Layers, &Activation{Kind: ActReLU})
		}
	}
	return s
}

// ForwardTensor is a convenience that wraps a constant input tensor and runs
// a forward pass with no gradient tracking on the input (parameters still
// receive gradients if Backward is called on a downstream loss).
func ForwardTensor(l Layer, x *tensor.Tensor) *Node {
	return l.Forward(Input(x))
}

// Predict runs l on x and returns the argmax class per row. Intended for
// classifier heads at evaluation time.
func Predict(l Layer, x *tensor.Tensor) []int {
	out := ForwardTensor(l, x).Value
	m := out.Rows()
	preds := make([]int, m)
	for i := 0; i < m; i++ {
		preds[i] = tensor.ArgMax(out.Row(i))
	}
	return preds
}
