package nn

import (
	"fmt"
	"math"

	"calibre/internal/tensor"
)

// CrossEntropy returns the mean softmax cross-entropy of logits (m×n)
// against integer targets (length m). This is the supervised classification
// loss used throughout the paper (the l_c term and the personalization
// objective).
func CrossEntropy(logits *Node, targets []int) *Node {
	return MaskedCrossEntropy(logits, targets, nil)
}

// MaskedCrossEntropy is CrossEntropy where, per row, the column indices in
// exclude[i] are removed from the softmax normalization (treated as -inf
// logits). exclude may be nil, or shorter than the batch (missing rows mean
// no exclusions). Contrastive losses use this to mask self-similarity.
func MaskedCrossEntropy(logits *Node, targets []int, exclude [][]int) *Node {
	m, n := logits.Value.Rows(), logits.Value.Cols()
	if len(targets) != m {
		panic(fmt.Sprintf("nn: CrossEntropy %d targets for %d rows", len(targets), m))
	}
	// Forward: per-row masked log-softmax; store softmax probabilities for
	// the backward pass.
	probs := logits.tape.alloc(m, n)
	var loss float64
	excluded := func(i int) []int {
		if exclude == nil || i >= len(exclude) {
			return nil
		}
		return exclude[i]
	}
	for i := 0; i < m; i++ {
		// The probs row doubles as the masked-logits scratch: mask in place,
		// take the log-sum-exp, then overwrite with the softmax.
		prow := probs.Row(i)
		copy(prow, logits.Value.Row(i))
		for _, j := range excluded(i) {
			prow[j] = math.Inf(-1)
		}
		lse := tensor.LogSumExp(prow)
		t := targets[i]
		if t < 0 || t >= n {
			panic(fmt.Sprintf("nn: CrossEntropy target %d out of range [0,%d)", t, n))
		}
		loss += lse - prow[t]
		for j := 0; j < n; j++ {
			if math.IsInf(prow[j], -1) {
				prow[j] = 0
				continue
			}
			prow[j] = math.Exp(prow[j] - lse)
		}
	}
	loss /= float64(m)
	v := logits.tape.alloc(1, 1)
	v.Set(0, 0, loss)
	tgt := append([]int(nil), targets...)
	return newOp(v, func(g *tensor.Tensor) {
		if !logits.requiresGrad {
			return
		}
		gv := g.At(0, 0) / float64(m)
		gl := logits.Grad()
		for i := 0; i < m; i++ {
			prow := probs.Row(i)
			grow := gl.Row(i)
			for j := 0; j < n; j++ {
				grow[j] += gv * prow[j]
			}
			grow[tgt[i]] -= gv
		}
	}, logits)
}

// SoftCrossEntropy returns -mean_i Σ_j q[i][j]·logsoftmax(logits)[i][j] for a
// constant target distribution q (m×n, rows summing to 1). SwAV's swapped
// prediction loss is this with q from the Sinkhorn assignment.
func SoftCrossEntropy(logits *Node, q *tensor.Tensor) *Node {
	m, n := logits.Value.Rows(), logits.Value.Cols()
	if q.Rows() != m || q.Cols() != n {
		panic(fmt.Sprintf("nn: SoftCrossEntropy q shape %v vs logits %v", q.Shape(), logits.Value.Shape()))
	}
	probs := logits.tape.alloc(m, n)
	var loss float64
	for i := 0; i < m; i++ {
		row := logits.Value.Row(i)
		lse := tensor.LogSumExp(row)
		qrow := q.Row(i)
		prow := probs.Row(i)
		for j := 0; j < n; j++ {
			loss -= qrow[j] * (row[j] - lse)
			prow[j] = math.Exp(row[j] - lse)
		}
	}
	loss /= float64(m)
	v := logits.tape.alloc(1, 1)
	v.Set(0, 0, loss)
	return newOp(v, func(g *tensor.Tensor) {
		if !logits.requiresGrad {
			return
		}
		gv := g.At(0, 0) / float64(m)
		gl := logits.Grad()
		for i := 0; i < m; i++ {
			prow := probs.Row(i)
			qrow := q.Row(i)
			grow := gl.Row(i)
			// Rows of q may sum to s ≤ 1; gradient is (s·p - q).
			var s float64
			for j := 0; j < n; j++ {
				s += qrow[j]
			}
			for j := 0; j < n; j++ {
				grow[j] += gv * (s*prow[j] - qrow[j])
			}
		}
	}, logits)
}

// NegCosineConst returns mean_i (1 - cos(x_i, t_i)) where t is a constant
// target (stop-gradient side). BYOL and SimSiam minimize this between the
// online predictor output and the (detached) target projection.
func NegCosineConst(x *Node, t *tensor.Tensor) *Node {
	m, n := x.Value.Rows(), x.Value.Cols()
	if t.Rows() != m || t.Cols() != n {
		panic(fmt.Sprintf("nn: NegCosineConst target shape %v vs %v", t.Shape(), x.Value.Shape()))
	}
	var loss float64
	coss := make([]float64, m)
	for i := 0; i < m; i++ {
		coss[i] = tensor.CosineSim(x.Value.Row(i), t.Row(i))
		loss += 1 - coss[i]
	}
	loss /= float64(m)
	v := x.tape.alloc(1, 1)
	v.Set(0, 0, loss)
	return newOp(v, func(g *tensor.Tensor) {
		if !x.requiresGrad {
			return
		}
		gv := g.At(0, 0) / float64(m)
		gx := x.Grad()
		for i := 0; i < m; i++ {
			xrow := x.Value.Row(i)
			trow := t.Row(i)
			nx := tensor.Norm2(xrow)
			nt := tensor.Norm2(trow)
			if nx < normEps || nt < normEps {
				continue
			}
			grow := gx.Row(i)
			c := coss[i]
			for j := 0; j < n; j++ {
				// d(1-cos)/dx_j = -(t̂_j - cos·x̂_j)/|x|
				grow[j] += gv * -((trow[j] / nt) - c*(xrow[j]/nx)) / nx
			}
		}
	}, x)
}

// NTXent computes the normalized-temperature cross-entropy (SimCLR) loss
// over a stacked batch of 2N projections, where row i and row i+N (mod 2N)
// are the two augmented views of the same sample. h is L2-normalized
// internally; temperature tau scales similarities.
func NTXent(h *Node, tau float64) *Node {
	total := h.Value.Rows()
	if total%2 != 0 || total < 4 {
		panic(fmt.Sprintf("nn: NTXent needs an even batch of ≥4 rows, got %d", total))
	}
	n := total / 2
	z := L2NormalizeRows(h)
	sim := Scale(MatMulTransB(z, z), 1/tau)
	targets := make([]int, total)
	exclude := make([][]int, total)
	selfIdx := make([]int, total) // shared backing for the per-row masks
	for i := 0; i < total; i++ {
		targets[i] = (i + n) % total
		selfIdx[i] = i
		exclude[i] = selfIdx[i : i+1] // mask self-similarity
	}
	return MaskedCrossEntropy(sim, targets, exclude)
}

// PairNTXent is NTXent for two separate view matrices (each N×d): it stacks
// them so row i of a pairs with row i of b.
func PairNTXent(a, b *Node, tau float64) *Node {
	return NTXent(ConcatRows(a, b), tau)
}

// PrototypeCE computes the prototypical-network cross-entropy: each encoding
// z_i (m×d) is classified against the prototype matrix protos (K×d) by
// scaled dot product, with assign[i] the index of its prototype. Both sides
// are L2-normalized. Gradients flow into z and protos (when protos is a
// graph node built with GroupMean, this implements the paper's L_n
// regularizer).
func PrototypeCE(z, protos *Node, assign []int, tau float64) *Node {
	zn := L2NormalizeRows(z)
	pn := L2NormalizeRows(protos)
	logits := Scale(MatMulTransB(zn, pn), 1/tau)
	return CrossEntropy(logits, assign)
}

// MSELoss returns mean squared error between x and a constant target.
func MSELoss(x *Node, target *tensor.Tensor) *Node {
	if !tensor.SameShape(x.Value, target) {
		panic(fmt.Sprintf("nn: MSELoss shape %v vs %v", x.Value.Shape(), target.Shape()))
	}
	diff := Sub(x, Input(target))
	return Scale(SumSquares(diff), 1/float64(x.Value.Len()))
}

// Accuracy returns the fraction of rows of logits whose argmax equals the
// target label.
func Accuracy(logits *tensor.Tensor, targets []int) float64 {
	m := logits.Rows()
	if m == 0 {
		return 0
	}
	var correct int
	for i := 0; i < m; i++ {
		if tensor.ArgMax(logits.Row(i)) == targets[i] {
			correct++
		}
	}
	return float64(correct) / float64(m)
}
