package nn

import "calibre/internal/tensor"

// Tape tracks every tensor a computation graph allocates — op outputs,
// lazily-created gradients, and backward scratch — so they can all be
// returned to a tensor.Arena in one call when the step is over.
//
// A tape enters a graph through InputOn: every op output derived (directly
// or transitively) from a taped input draws its buffers from the tape's
// arena instead of the Go heap. Reset returns them all; after Reset no node
// of the step's graph may be used again. Values that must outlive the step
// (the scalar loss, momentum-encoder keys, …) must be read or deep-copied
// before Reset — see internal/ssl for the one call site that manages this
// lifecycle.
//
// A nil *Tape is valid everywhere and degrades to plain heap allocation, as
// does a Tape over a nil arena. A Tape is NOT safe for concurrent use; use
// one per training worker (the arena underneath is mutex-guarded, so workers
// may share an arena but never a tape).
type Tape struct {
	arena *tensor.Arena
	taken []*tensor.Tensor

	// nodes is a recycled Node slab: ops on a taped graph draw their Node
	// headers from here instead of the heap, and Reset reclaims the slots.
	// Like taped tensors, slab nodes must not be used after Reset.
	nodes []Node

	// Backward scratch, reused across steps by topoSort.
	visited map[*Node]bool
	order   []*Node
	stack   []sortFrame
}

// NewTape returns a tape drawing from arena (which may be nil for plain
// heap allocation).
func NewTape(arena *tensor.Arena) *Tape { return &Tape{arena: arena} }

// node returns a zeroed *Node drawn from the tape's slab, recycling slots
// freed by the last Reset. After the first step has grown the slab, a
// steady-state step allocates no Node headers at all. Nil-safe: a nil tape
// heap-allocates.
func (tp *Tape) node() *Node {
	if tp == nil {
		return &Node{}
	}
	if len(tp.nodes) < cap(tp.nodes) {
		tp.nodes = tp.nodes[:len(tp.nodes)+1]
	} else {
		tp.nodes = append(tp.nodes, Node{})
	}
	n := &tp.nodes[len(tp.nodes)-1]
	*n = Node{}
	return n
}

// alloc borrows a zeroed tensor of the given shape, tracked for Reset.
func (tp *Tape) alloc(shape ...int) *tensor.Tensor {
	if tp == nil {
		return tensor.New(shape...)
	}
	t := tp.arena.GetTensor(shape...)
	if tp.arena != nil {
		tp.taken = append(tp.taken, t)
	}
	return t
}

// allocLike borrows a zeroed tensor with t's shape, tracked for Reset.
func (tp *Tape) allocLike(t *tensor.Tensor) *tensor.Tensor {
	if tp == nil {
		return tensor.NewLike(t)
	}
	out := tp.arena.GetTensorLike(t)
	if tp.arena != nil {
		tp.taken = append(tp.taken, out)
	}
	return out
}

// Reset returns every tensor allocated through this tape to the arena and
// empties the tape for the next step. Nil-safe.
func (tp *Tape) Reset() {
	if tp == nil {
		return
	}
	for i, t := range tp.taken {
		tp.arena.PutTensor(t)
		tp.taken[i] = nil
	}
	tp.taken = tp.taken[:0]
	// Zero the slab so recycled Nodes hold no references to dead tensors or
	// closures, then make every slot reusable by the next step.
	for i := range tp.nodes {
		tp.nodes[i] = Node{}
	}
	tp.nodes = tp.nodes[:0]
}

// Live returns the number of tensors currently tracked by the tape.
func (tp *Tape) Live() int {
	if tp == nil {
		return 0
	}
	return len(tp.taken)
}
