package nn

import (
	"math"
	"math/rand"
	"testing"

	"calibre/internal/tensor"
)

func TestGradVarianceHinge(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := randParam(rng, "x", 6, 4)
	// Shrink values so columns sit below the hinge target and gradients
	// flow (hinge active).
	for i, d := 0, x.Value.Data(); i < len(d); i++ {
		d[i] *= 0.3
	}
	gradCheck(t, []*Param{x}, func() *Node {
		return VarianceHinge(x.Node(), 1.0, 1e-4)
	}, 1e-4)
}

func TestVarianceHingeInactiveAboveGamma(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := NewParam("x", 20, 3)
	for i, d := 0, x.Value.Data(); i < len(d); i++ {
		d[i] = rng.NormFloat64() * 10 // std ≈ 10 ≫ γ=1
	}
	l := VarianceHinge(x.Node(), 1.0, 1e-4)
	if got := l.Value.At(0, 0); got != 0 {
		t.Fatalf("hinge should be inactive, loss = %v", got)
	}
	x.ZeroGrad()
	if err := Backward(l); err != nil {
		t.Fatalf("Backward: %v", err)
	}
	for _, g := range x.Grad.Data() {
		if g != 0 {
			t.Fatal("inactive hinge must produce zero gradient")
		}
	}
}

func TestVarianceHingeCollapsedColumns(t *testing.T) {
	x := NewParam("x", 10, 2)
	x.Value.Fill(3) // zero variance everywhere
	l := VarianceHinge(x.Node(), 1.0, 1e-6)
	// Both columns fully collapsed: loss ≈ γ - sqrt(eps) ≈ 1.
	if got := l.Value.At(0, 0); math.Abs(got-1) > 0.01 {
		t.Fatalf("collapsed hinge loss = %v, want ≈1", got)
	}
}

func TestVarianceHingeTinyBatch(t *testing.T) {
	x := NewParam("x", 1, 3)
	l := VarianceHinge(x.Node(), 1.0, 1e-4)
	if l.Value.At(0, 0) != 0 {
		t.Fatal("n<2 variance hinge should be zero")
	}
	if err := Backward(l); err != nil {
		t.Fatalf("Backward on degenerate hinge: %v", err)
	}
}

func TestGradCovariancePenalty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := randParam(rng, "x", 7, 4)
	gradCheck(t, []*Param{x}, func() *Node {
		return CovariancePenalty(x.Node())
	}, 1e-4)
}

func TestCovariancePenaltyDecorrelatedIsZero(t *testing.T) {
	// Columns proportional to orthogonal patterns with zero empirical
	// covariance.
	x := NewParam("x", 4, 2)
	x.Value.SetRow(0, []float64{1, 1})
	x.Value.SetRow(1, []float64{1, -1})
	x.Value.SetRow(2, []float64{-1, 1})
	x.Value.SetRow(3, []float64{-1, -1})
	l := CovariancePenalty(x.Node())
	if got := l.Value.At(0, 0); math.Abs(got) > 1e-12 {
		t.Fatalf("decorrelated penalty = %v, want 0", got)
	}
}

func TestCovariancePenaltyCorrelatedPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := NewParam("x", 10, 3)
	for i := 0; i < 10; i++ {
		v := rng.NormFloat64()
		x.Value.SetRow(i, []float64{v, v, v}) // perfectly correlated columns
	}
	l := CovariancePenalty(x.Node())
	if l.Value.At(0, 0) <= 0 {
		t.Fatalf("correlated penalty = %v, want > 0", l.Value.At(0, 0))
	}
}

func TestCovariancePenaltyTinyBatch(t *testing.T) {
	x := NewParam("x", 1, 3)
	l := CovariancePenalty(x.Node())
	if l.Value.At(0, 0) != 0 {
		t.Fatal("n<2 covariance penalty should be zero")
	}
}

// Minimizing the VICReg-style combination must spread variance across
// dimensions: train a linear map so a collapsed input recovers variance.
func TestVICRegTermsTrainable(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l := NewLinear(rng, 4, 4, "vic")
	opt := NewSGD(l, 0.5, 0.9, 0)
	x := tensor.RandN(rng, 0.2, 16, 4) // low-variance inputs
	var first, last float64
	for step := 0; step < 200; step++ {
		out := ForwardTensor(l, x)
		loss := Add(VarianceHinge(out, 1.0, 1e-4), CovariancePenalty(out))
		if step == 0 {
			first = loss.Value.At(0, 0)
		}
		last = loss.Value.At(0, 0)
		opt.ZeroGrad()
		if err := Backward(loss); err != nil {
			t.Fatalf("Backward: %v", err)
		}
		opt.Step()
	}
	if !(last < first*0.8) {
		t.Fatalf("VICReg terms should be minimizable: %v -> %v", first, last)
	}
}
