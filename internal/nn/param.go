package nn

import (
	"fmt"
	"math"
	"math/rand"

	"calibre/internal/tensor"
)

// Param is a trainable tensor with an accumulated gradient.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor

	node *Node // cached leaf, rebuilt if Value/Grad are rebound
}

// NewParam allocates a parameter with the given shape, zero-valued.
func NewParam(name string, shape ...int) *Param {
	v := tensor.New(shape...)
	return &Param{
		Name:  name,
		Value: v,
		Grad:  tensor.NewLike(v),
	}
}

// NewParamFrom wraps an existing tensor as a parameter.
func NewParamFrom(name string, t *tensor.Tensor) *Param {
	return &Param{Name: name, Value: t, Grad: tensor.NewLike(t)}
}

// Node returns a graph leaf bound to the parameter: gradients reaching the
// node accumulate directly into p.Grad. Calling Node multiple times within
// one graph (e.g. an encoder applied to two augmented views) is supported —
// all uses share the same gradient sink. The leaf is cached across calls
// (leaves are immutable, so graphs may share it); it is rebuilt if the
// Value or Grad tensors are ever rebound.
func (p *Param) Node() *Node {
	if p.node == nil || p.node.Value != p.Value || p.node.grad != p.Grad {
		p.node = &Node{Value: p.Value, grad: p.Grad, requiresGrad: true}
	}
	return p.node
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// InitHe fills p with He-normal initialization (std = sqrt(2/fanIn)),
// appropriate for ReLU networks.
func (p *Param) InitHe(rng *rand.Rand, fanIn int) {
	std := math.Sqrt(2 / float64(fanIn))
	for i, d := 0, p.Value.Data(); i < len(d); i++ {
		d[i] = rng.NormFloat64() * std
	}
}

// InitUniform fills p with U(-a, a), the classic Glorot-uniform bound when
// a = sqrt(6/(fanIn+fanOut)).
func (p *Param) InitUniform(rng *rand.Rand, a float64) {
	for i, d := 0, p.Value.Data(); i < len(d); i++ {
		d[i] = (rng.Float64()*2 - 1) * a
	}
}

// Module is anything that owns parameters.
type Module interface {
	// Params returns the module's parameters in a stable order.
	Params() []*Param
}

// ParamCount returns the total number of scalar parameters in m.
func ParamCount(m Module) int {
	var n int
	for _, p := range m.Params() {
		n += p.Value.Len()
	}
	return n
}

// ZeroGrads clears every parameter gradient of m.
func ZeroGrads(m Module) {
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
}

// Flatten copies all parameter values of m into a single vector, in
// Params() order. This is the wire format exchanged between federated
// clients and the server.
func Flatten(m Module) []float64 {
	out := make([]float64, 0, ParamCount(m))
	for _, p := range m.Params() {
		out = append(out, p.Value.Data()...)
	}
	return out
}

// Unflatten writes vec back into m's parameters. The vector length must
// equal ParamCount(m).
func Unflatten(m Module, vec []float64) error {
	want := ParamCount(m)
	if len(vec) != want {
		return fmt.Errorf("nn: Unflatten length %d, model has %d parameters", len(vec), want)
	}
	off := 0
	for _, p := range m.Params() {
		d := p.Value.Data()
		copy(d, vec[off:off+len(d)])
		off += len(d)
	}
	return nil
}

// FlattenGrads copies all parameter gradients into one vector (same layout
// as Flatten).
func FlattenGrads(m Module) []float64 {
	out := make([]float64, 0, ParamCount(m))
	for _, p := range m.Params() {
		out = append(out, p.Grad.Data()...)
	}
	return out
}

// AddToGrads adds vec (Flatten layout) into the parameter gradients. Used
// by methods that inject parameter-space correction terms (SCAFFOLD control
// variates, Ditto's proximal term).
func AddToGrads(m Module, vec []float64, scale float64) error {
	want := ParamCount(m)
	if len(vec) != want {
		return fmt.Errorf("nn: AddToGrads length %d, model has %d parameters", len(vec), want)
	}
	off := 0
	for _, p := range m.Params() {
		g := p.Grad.Data()
		for i := range g {
			g[i] += scale * vec[off+i]
		}
		off += len(g)
	}
	return nil
}

// CopyParams copies src's parameter values into dst. The two modules must
// have identical parameter layouts.
func CopyParams(dst, src Module) error {
	dp, sp := dst.Params(), src.Params()
	if len(dp) != len(sp) {
		return fmt.Errorf("nn: CopyParams param count %d vs %d", len(dp), len(sp))
	}
	for i := range dp {
		if dp[i].Value.Len() != sp[i].Value.Len() {
			return fmt.Errorf("nn: CopyParams param %q size %d vs %d", dp[i].Name, dp[i].Value.Len(), sp[i].Value.Len())
		}
		copy(dp[i].Value.Data(), sp[i].Value.Data())
	}
	return nil
}

// EMAUpdate moves target toward online with decay m: target = m*target +
// (1-m)*online. Used by BYOL/MoCo momentum encoders and FedEMA.
func EMAUpdate(target, online Module, m float64) error {
	tp, op := target.Params(), online.Params()
	if len(tp) != len(op) {
		return fmt.Errorf("nn: EMAUpdate param count %d vs %d", len(tp), len(op))
	}
	for i := range tp {
		td, od := tp[i].Value.Data(), op[i].Value.Data()
		if len(td) != len(od) {
			return fmt.Errorf("nn: EMAUpdate param %q size %d vs %d", tp[i].Name, len(td), len(od))
		}
		for j := range td {
			td[j] = m*td[j] + (1-m)*od[j]
		}
	}
	return nil
}

// VecOps: small helpers on flat parameter vectors (the FL wire format).

// VecAdd returns a+b.
func VecAdd(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// VecSub returns a-b.
func VecSub(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// VecScale returns a*s.
func VecScale(a []float64, s float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] * s
	}
	return out
}

// VecAxpy computes dst += s*a in place.
func VecAxpy(dst, a []float64, s float64) {
	for i := range dst {
		dst[i] += s * a[i]
	}
}

// VecLerp returns (1-t)*a + t*b.
func VecLerp(a, b []float64, t float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = (1-t)*a[i] + t*b[i]
	}
	return out
}

// VecNorm2 returns the Euclidean norm of a.
func VecNorm2(a []float64) float64 {
	var ss float64
	for _, v := range a {
		ss += v * v
	}
	return math.Sqrt(ss)
}
