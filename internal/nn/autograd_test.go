package nn

import (
	"math"
	"math/rand"
	"testing"

	"calibre/internal/tensor"
)

// gradCheck numerically verifies the analytic gradient of loss() with
// respect to every element of every param in params. loss must rebuild the
// graph from current param values and return the scalar loss node.
func gradCheck(t *testing.T, params []*Param, loss func() *Node, tol float64) {
	t.Helper()
	build := func() *Node { return loss() }

	// Analytic gradients.
	for _, p := range params {
		p.ZeroGrad()
	}
	l := build()
	if err := Backward(l); err != nil {
		t.Fatalf("Backward: %v", err)
	}
	analytic := make([][]float64, len(params))
	for i, p := range params {
		analytic[i] = append([]float64(nil), p.Grad.Data()...)
	}

	const h = 1e-6
	for pi, p := range params {
		d := p.Value.Data()
		for j := range d {
			orig := d[j]
			d[j] = orig + h
			lp := build().Value.At(0, 0)
			d[j] = orig - h
			lm := build().Value.At(0, 0)
			d[j] = orig
			num := (lp - lm) / (2 * h)
			got := analytic[pi][j]
			scale := math.Max(1, math.Max(math.Abs(num), math.Abs(got)))
			if math.Abs(num-got)/scale > tol {
				t.Fatalf("param %q[%d]: analytic %g vs numeric %g", p.Name, j, got, num)
			}
		}
	}
}

func randParam(rng *rand.Rand, name string, shape ...int) *Param {
	p := NewParam(name, shape...)
	for i, d := 0, p.Value.Data(); i < len(d); i++ {
		d[i] = rng.NormFloat64()
	}
	return p
}

func TestBackwardRequiresScalar(t *testing.T) {
	p := NewParam("p", 2, 2)
	if err := Backward(p.Node()); err == nil {
		t.Fatal("Backward on non-scalar should error")
	}
}

func TestBackwardNoGradPath(t *testing.T) {
	x := Input(tensor.MustFromSlice([]float64{1, 2, 3, 4}, 2, 2))
	l := Mean(x)
	if err := Backward(l); err != nil {
		t.Fatalf("Backward on constant graph should be a no-op, got %v", err)
	}
}

func TestGradMatMulAddBias(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := randParam(rng, "w", 3, 4)
	b := randParam(rng, "b", 1, 4)
	x := tensor.RandN(rng, 1, 5, 3)
	gradCheck(t, []*Param{w, b}, func() *Node {
		return Mean(AddBias(MatMul(Input(x), w.Node()), b.Node()))
	}, 1e-5)
}

func TestGradMatMulBothSides(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randParam(rng, "a", 4, 3)
	b := randParam(rng, "b", 3, 2)
	gradCheck(t, []*Param{a, b}, func() *Node {
		return SumSquares(MatMul(a.Node(), b.Node()))
	}, 1e-5)
}

func TestGradMatMulTransB(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randParam(rng, "a", 4, 3)
	b := randParam(rng, "b", 5, 3)
	gradCheck(t, []*Param{a, b}, func() *Node {
		return SumSquares(MatMulTransB(a.Node(), b.Node()))
	}, 1e-5)
}

func TestGradAddSubScaleMul(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randParam(rng, "a", 3, 3)
	b := randParam(rng, "b", 3, 3)
	gradCheck(t, []*Param{a, b}, func() *Node {
		sum := Add(a.Node(), b.Node())
		diff := Sub(a.Node(), b.Node())
		prod := MulElem(sum, diff) // (a+b)∘(a-b)
		return Mean(Scale(prod, 2.5))
	}, 1e-5)
}

func TestGradReLUTanh(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randParam(rng, "a", 4, 4)
	// Nudge values away from the ReLU kink where the numeric gradient is
	// undefined.
	for i, d := 0, a.Value.Data(); i < len(d); i++ {
		if math.Abs(d[i]) < 1e-3 {
			d[i] = 0.1
		}
	}
	gradCheck(t, []*Param{a}, func() *Node {
		return Mean(Tanh(ReLU(a.Node())))
	}, 1e-5)
}

func TestGradL2NormalizeRows(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randParam(rng, "a", 4, 5)
	w := tensor.RandN(rng, 1, 4, 5)
	gradCheck(t, []*Param{a}, func() *Node {
		return Mean(MulElem(L2NormalizeRows(a.Node()), Input(w)))
	}, 1e-5)
}

func TestL2NormalizeZeroRowPassThrough(t *testing.T) {
	p := NewParam("p", 2, 3)
	p.Value.SetRow(0, []float64{3, 4, 0})
	// row 1 stays zero
	out := L2NormalizeRows(p.Node())
	if !almost(out.Value.At(0, 0), 0.6, 1e-12) {
		t.Fatalf("row0 = %v", out.Value.Row(0))
	}
	if out.Value.At(1, 0) != 0 {
		t.Fatalf("zero row should stay zero: %v", out.Value.Row(1))
	}
	l := Mean(out)
	if err := Backward(l); err != nil {
		t.Fatalf("Backward: %v", err)
	}
	// Zero-row gradient should be pass-through (1/6 per element for Mean).
	if !almost(p.Grad.At(1, 0), 1.0/6, 1e-12) {
		t.Fatalf("zero-row grad = %v", p.Grad.Row(1))
	}
}

func TestGradConcatRowsCols(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randParam(rng, "a", 2, 3)
	b := randParam(rng, "b", 4, 3)
	w := tensor.RandN(rng, 1, 6, 3)
	gradCheck(t, []*Param{a, b}, func() *Node {
		return Mean(MulElem(ConcatRows(a.Node(), b.Node()), Input(w)))
	}, 1e-5)

	c := randParam(rng, "c", 3, 2)
	d := randParam(rng, "d", 3, 4)
	w2 := tensor.RandN(rng, 1, 3, 6)
	gradCheck(t, []*Param{c, d}, func() *Node {
		return Mean(MulElem(ConcatCols(c.Node(), d.Node()), Input(w2)))
	}, 1e-5)
}

func TestGradGatherRows(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randParam(rng, "a", 5, 3)
	idx := []int{0, 2, 2, 4} // duplicate index exercises accumulation
	w := tensor.RandN(rng, 1, 4, 3)
	gradCheck(t, []*Param{a}, func() *Node {
		return Mean(MulElem(GatherRows(a.Node(), idx), Input(w)))
	}, 1e-5)
}

func TestGradGroupMean(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randParam(rng, "a", 6, 4)
	groups := [][]int{{0, 1, 2}, {3}, {}, {4, 5}}
	w := tensor.RandN(rng, 1, 4, 4)
	gradCheck(t, []*Param{a}, func() *Node {
		return Mean(MulElem(GroupMean(a.Node(), groups), Input(w)))
	}, 1e-5)
}

func TestGroupMeanEmptyGroupIsZero(t *testing.T) {
	a := NewParam("a", 2, 2)
	a.Value.Fill(3)
	out := GroupMean(a.Node(), [][]int{{}, {0, 1}})
	if out.Value.At(0, 0) != 0 || out.Value.At(0, 1) != 0 {
		t.Fatalf("empty group row should be zero: %v", out.Value.Row(0))
	}
	if out.Value.At(1, 0) != 3 {
		t.Fatalf("group mean = %v", out.Value.Row(1))
	}
}

func TestGradRowDotConst(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randParam(rng, "a", 4, 3)
	c := tensor.RandN(rng, 1, 4, 3)
	gradCheck(t, []*Param{a}, func() *Node {
		return Mean(RowDotConst(a.Node(), c))
	}, 1e-5)
}

func TestGradMeanSumSquares(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randParam(rng, "a", 3, 3)
	gradCheck(t, []*Param{a}, func() *Node {
		return Add(Mean(a.Node()), Scale(SumSquares(a.Node()), 0.1))
	}, 1e-5)
}

func TestDetachBlocksGradient(t *testing.T) {
	a := NewParam("a", 2, 2)
	a.Value.Fill(1)
	l := Mean(MulElem(a.Node(), Detach(a.Node())))
	if err := Backward(l); err != nil {
		t.Fatalf("Backward: %v", err)
	}
	// With detach, d/da mean(a∘const(a)) = const(a)/4 = 0.25 each.
	for _, g := range a.Grad.Data() {
		if !almost(g, 0.25, 1e-12) {
			t.Fatalf("detached grad = %v, want 0.25", g)
		}
	}
}

func TestParamSharedAcrossTwoForwards(t *testing.T) {
	// Using the same parameter twice in one graph (two augmented views)
	// must accumulate both contributions.
	rng := rand.New(rand.NewSource(12))
	w := randParam(rng, "w", 3, 2)
	x1 := tensor.RandN(rng, 1, 4, 3)
	x2 := tensor.RandN(rng, 1, 4, 3)
	gradCheck(t, []*Param{w}, func() *Node {
		y1 := MatMul(Input(x1), w.Node())
		y2 := MatMul(Input(x2), w.Node())
		return SumSquares(Add(y1, y2))
	}, 1e-5)
}

func TestGradCrossEntropy(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	logits := randParam(rng, "logits", 5, 4)
	targets := []int{0, 3, 1, 2, 2}
	gradCheck(t, []*Param{logits}, func() *Node {
		return CrossEntropy(logits.Node(), targets)
	}, 1e-5)
}

func TestGradMaskedCrossEntropy(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	logits := randParam(rng, "logits", 4, 4)
	targets := []int{1, 0, 3, 2}
	exclude := [][]int{{0}, {1}, {2}, {3}} // mask diagonal
	gradCheck(t, []*Param{logits}, func() *Node {
		return MaskedCrossEntropy(logits.Node(), targets, exclude)
	}, 1e-5)
}

func TestCrossEntropyValueKnown(t *testing.T) {
	// Uniform logits over n classes give loss = ln(n).
	logits := NewParam("l", 3, 4)
	l := CrossEntropy(logits.Node(), []int{0, 1, 2})
	if !almost(l.Value.At(0, 0), math.Log(4), 1e-12) {
		t.Fatalf("uniform CE = %v, want ln4", l.Value.At(0, 0))
	}
}

func TestGradSoftCrossEntropy(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	logits := randParam(rng, "logits", 4, 5)
	q := tensor.New(4, 5)
	for i := 0; i < 4; i++ {
		row := make([]float64, 5)
		var s float64
		for j := range row {
			row[j] = rng.Float64()
			s += row[j]
		}
		for j := range row {
			row[j] /= s
		}
		q.SetRow(i, row)
	}
	gradCheck(t, []*Param{logits}, func() *Node {
		return SoftCrossEntropy(logits.Node(), q)
	}, 1e-5)
}

func TestGradNegCosineConst(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	x := randParam(rng, "x", 4, 6)
	tgt := tensor.RandN(rng, 1, 4, 6)
	gradCheck(t, []*Param{x}, func() *Node {
		return NegCosineConst(x.Node(), tgt)
	}, 1e-5)
}

func TestNegCosinePerfectAlignmentIsZero(t *testing.T) {
	x := NewParam("x", 2, 3)
	x.Value.SetRow(0, []float64{1, 2, 3})
	x.Value.SetRow(1, []float64{-1, 0, 1})
	tgt := tensor.Scale(x.Value, 2) // same directions, different magnitude
	l := NegCosineConst(x.Node(), tgt)
	if !almost(l.Value.At(0, 0), 0, 1e-12) {
		t.Fatalf("aligned NegCosine = %v, want 0", l.Value.At(0, 0))
	}
}

func TestGradNTXent(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	h := randParam(rng, "h", 8, 5) // 2N=8 rows
	gradCheck(t, []*Param{h}, func() *Node {
		return NTXent(h.Node(), 0.5)
	}, 1e-4)
}

func TestNTXentDecreasesWithAlignment(t *testing.T) {
	// Perfectly aligned positive pairs should have lower loss than random
	// pairs.
	rng := rand.New(rand.NewSource(18))
	n := 6
	aligned := tensor.New(2*n, 4)
	random := tensor.New(2*n, 4)
	for i := 0; i < n; i++ {
		v := make([]float64, 4)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		aligned.SetRow(i, v)
		aligned.SetRow(i+n, v)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		random.SetRow(i, v)
		r2 := make([]float64, 4)
		for j := range r2 {
			r2[j] = rng.NormFloat64()
		}
		random.SetRow(i+n, r2)
	}
	la := NTXent(Input(aligned), 0.5).Value.At(0, 0)
	lr := NTXent(Input(random), 0.5).Value.At(0, 0)
	if la >= lr {
		t.Fatalf("aligned NTXent %v should be < random %v", la, lr)
	}
}

func TestGradPrototypeCE(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	z := randParam(rng, "z", 6, 4)
	assign := []int{0, 0, 1, 1, 2, 2}
	groups := [][]int{{0, 1}, {2, 3}, {4, 5}}
	gradCheck(t, []*Param{z}, func() *Node {
		zn := z.Node()
		protos := GroupMean(zn, groups)
		return PrototypeCE(zn, protos, assign, 0.5)
	}, 1e-4)
}

func TestGradPairNTXent(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	a := randParam(rng, "a", 3, 4)
	b := randParam(rng, "b", 3, 4)
	gradCheck(t, []*Param{a, b}, func() *Node {
		return PairNTXent(a.Node(), b.Node(), 0.7)
	}, 1e-4)
}

func TestMSELoss(t *testing.T) {
	x := NewParam("x", 1, 2)
	x.Value.SetRow(0, []float64{1, 3})
	tgt := tensor.MustFromSlice([]float64{0, 1}, 1, 2)
	l := MSELoss(x.Node(), tgt)
	if !almost(l.Value.At(0, 0), (1.0+4.0)/2, 1e-12) {
		t.Fatalf("MSE = %v, want 2.5", l.Value.At(0, 0))
	}
	gradCheck(t, []*Param{x}, func() *Node {
		return MSELoss(x.Node(), tgt)
	}, 1e-6)
}

func TestAccuracy(t *testing.T) {
	logits := tensor.MustFromSlice([]float64{
		2, 1, 0,
		0, 5, 1,
		1, 0, 9,
		3, 2, 1,
	}, 4, 3)
	got := Accuracy(logits, []int{0, 1, 2, 2})
	if !almost(got, 0.75, 1e-12) {
		t.Fatalf("Accuracy = %v, want 0.75", got)
	}
	if Accuracy(tensor.New(0, 3), nil) != 0 {
		t.Fatal("empty accuracy should be 0")
	}
}

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
