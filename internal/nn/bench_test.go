package nn

import (
	"math/rand"
	"testing"

	"calibre/internal/tensor"
)

func BenchmarkMatMul64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.RandN(rng, 1, 64, 64)
	y := tensor.RandN(rng, 1, 64, 64)
	out := tensor.New(64, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMulInto(out, x, y)
	}
}

func BenchmarkMLPForward(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	m := MLP(rng, "bench", 64, 96, 48)
	x := tensor.RandN(rng, 1, 32, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ForwardTensor(m, x)
	}
}

func BenchmarkMLPTrainStep(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	m := MLP(rng, "bench", 64, 96, 48, 10)
	opt := NewSGD(m, 0.05, 0.9, 0)
	x := tensor.RandN(rng, 1, 32, 64)
	targets := make([]int, 32)
	for i := range targets {
		targets[i] = rng.Intn(10)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.ZeroGrad()
		loss := CrossEntropy(ForwardTensor(m, x), targets)
		if err := Backward(loss); err != nil {
			b.Fatal(err)
		}
		opt.Step()
	}
}

// BenchmarkMLPTrainStepLarge exercises a train step big enough that the
// Linear forward/backward matrix products leave tensor's serial fast path,
// comparing a single-worker pool against the default pool size. On a
// multi-core host the pooled variant tracks the kernel speedup; results are
// bit-identical either way.
func BenchmarkMLPTrainStepLarge(b *testing.B) {
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"pool", 0}, // default: GOMAXPROCS or CALIBRE_KERNEL_WORKERS
	} {
		b.Run(bc.name, func(b *testing.B) {
			tensor.SetWorkers(bc.workers)
			defer tensor.SetWorkers(0)
			rng := rand.New(rand.NewSource(5))
			m := MLP(rng, "bench", 256, 256, 128, 10)
			opt := NewSGD(m, 0.05, 0.9, 0)
			x := tensor.RandN(rng, 1, 128, 256)
			targets := make([]int, 128)
			for i := range targets {
				targets[i] = rng.Intn(10)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				opt.ZeroGrad()
				loss := CrossEntropy(ForwardTensor(m, x), targets)
				if err := Backward(loss); err != nil {
					b.Fatal(err)
				}
				opt.Step()
			}
		})
	}
}

func BenchmarkNTXentForwardBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	h := NewParam("h", 64, 24)
	for i, d := 0, h.Value.Data(); i < len(d); i++ {
		d[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ZeroGrad()
		loss := NTXent(h.Node(), 0.5)
		if err := Backward(loss); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFlattenUnflatten(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	m := MLP(rng, "bench", 64, 96, 48)
	vec := Flatten(m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vec = Flatten(m)
		if err := Unflatten(m, vec); err != nil {
			b.Fatal(err)
		}
	}
}
