// Package calibre is a from-scratch Go reproduction of "Calibre: Towards
// Fair and Accurate Personalized Federated Learning with Self-Supervised
// Learning" (Chen, Su, Li — ICDCS 2024).
//
// Calibre trains a global encoder with self-supervised learning across
// federated clients, calibrates its representations with two
// client-adaptive prototype regularizers (L_n, L_p), aggregates with
// prototype-divergence weighting, and personalizes each client with a
// lightweight linear head. This package is the stable public surface over
// the internal substrates (tensor/autograd engine, synthetic datasets,
// non-i.i.d. partitioners, six SSL methods, 20+ FL baselines, an
// in-process simulator and a TCP federation runtime).
//
// Quick start:
//
//	env, _ := calibre.NewEnvironment("cifar10-q(2,500)", calibre.ScaleSmoke, 42)
//	out, _ := calibre.Run(context.Background(), env, "calibre-simclr")
//	fmt.Println(out.Participants.Summary) // mean ± std accuracy across clients
//
// Every table and figure of the paper is reproducible via RunExperiment
// ("fig1".."fig8", "table1"); see EXPERIMENTS.md for the recorded shapes.
package calibre

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"sort"

	"calibre/internal/baselines"
	"calibre/internal/core"
	"calibre/internal/data"
	"calibre/internal/eval"
	"calibre/internal/experiments"
	"calibre/internal/fl"
	"calibre/internal/flnet"
	"calibre/internal/health"
	"calibre/internal/obs"
	"calibre/internal/param"
	"calibre/internal/partition"
	"calibre/internal/ssl"
	"calibre/internal/store"
	"calibre/internal/sweep"
)

// Re-exported types forming the public API. The aliases point at internal
// implementations; construct them through the helpers in this package.
type (
	// Scale selects experiment size: ScaleSmoke, ScaleCI or ScalePaper.
	Scale = experiments.Scale
	// Environment is a materialized experiment world (data + clients).
	Environment = experiments.Environment
	// MethodOutcome is a method's accuracy results on an environment.
	MethodOutcome = experiments.MethodOutcome
	// Report is a full experiment report (one paper figure/table).
	Report = experiments.Report
	// EmbeddingResult quantifies representation geometry (t-SNE figures).
	EmbeddingResult = experiments.EmbeddingResult
	// Setting describes a dataset + non-i.i.d. partition combination.
	Setting = experiments.Setting

	// Method bundles a trainer, aggregator and personalizer.
	Method = fl.Method
	// RoundStats reports one federated round.
	RoundStats = fl.RoundStats
	// Update is a client's per-round result; its payload travels either
	// dense (Params) or as a lossless XOR-delta (Delta).
	Update = fl.Update
	// Vector is the typed model parameter vector the update plane
	// exchanges (internal/param).
	Vector = param.Vector
	// Delta is the lossless XOR-delta encoding of a Vector against a
	// reference — the compressed wire and incremental-checkpoint form.
	Delta = param.Delta

	// Client is one participant's local data partition.
	Client = partition.Client
	// Dataset is an in-memory (partially) labeled dataset.
	Dataset = data.Dataset
	// DataSpec parameterizes the synthetic dataset generator.
	DataSpec = data.Spec

	// Summary aggregates per-client accuracies (mean = performance,
	// variance = fairness).
	Summary = eval.Summary
	// MethodResult pairs a method with its summary and raw accuracies.
	MethodResult = eval.MethodResult

	// CalibreOptions exposes the paper's hyperparameters (α, τ, K, the
	// L_n/L_p switches and the aggregation temperature).
	CalibreOptions = core.Options

	// ServerConfig / ClientConfig / FederationResult run FL over TCP.
	ServerConfig     = flnet.ServerConfig
	ClientConfig     = flnet.ClientConfig
	FederationResult = flnet.Result
	// Server orchestrates a TCP federation.
	Server = flnet.Server
	// StragglerPolicy picks the fate of clients that miss a round
	// deadline under quorum (K-of-N) aggregation.
	StragglerPolicy = fl.StragglerPolicy

	// CheckpointStore is a durable directory of versioned federation
	// snapshots (atomic writes, CRC-validated binary codec, crash
	// fallback to the previous good version).
	CheckpointStore = store.Store
	// Snapshot is one durable checkpoint: metadata plus round state.
	Snapshot = store.Snapshot
	// SnapshotMeta describes which federation a snapshot belongs to.
	SnapshotMeta = store.Meta
	// SimState is a federation's complete resumable round state; both the
	// simulator (SimConfig) and the TCP server (ServerConfig) emit it via
	// OnCheckpoint and accept it back via ResumeFrom.
	SimState = fl.SimState

	// SweepGrid is a declarative scenario grid: methods × settings ×
	// seeds × federation knobs, expanded into deterministic cells.
	SweepGrid = sweep.Grid
	// SweepConfig controls sweep execution: worker budgets, per-cell
	// timeouts, the resumable manifest directory and per-cell durable
	// checkpoints.
	SweepConfig = sweep.Config
	// SweepCell is one fully specified scenario of a grid.
	SweepCell = sweep.Cell
	// SweepCellResult is one cell's typed outcome.
	SweepCellResult = sweep.CellResult
	// SweepResult is a completed sweep: every cell outcome in canonical
	// order.
	SweepResult = sweep.Result
	// SweepReport is the fairness-first aggregation of a sweep —
	// cross-seed aggregates with variance-of-variance, variance reduction
	// vs the grid baseline and per-scenario Pareto fronts — renderable as
	// CSV and markdown.
	SweepReport = sweep.Report

	// MetricsRegistry is the live observability plane: attach one to
	// SimConfig.Obs, ServerConfig.Obs or SweepConfig.Obs and every round
	// is counted (responders, stragglers, uplink wire-vs-dense bytes,
	// per-client participation) without perturbing results — a run with a
	// registry attached is bit-identical to one without. Snapshot is
	// race-free and never blocks training; ServeMetrics exposes it over
	// HTTP.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is one consistent point-in-time view of a
	// MetricsRegistry (counters, gauges, recent round samples,
	// participation table); its WriteProm renders Prometheus text.
	MetricsSnapshot = obs.Snapshot
	// MetricsRoundSample is one federated round as the metrics plane saw
	// it.
	MetricsRoundSample = obs.RoundSample

	// HealthConfig selects and tunes the streaming anomaly detectors
	// (loss divergence/plateau, NaN/Inf, fairness drift, per-client
	// update-norm outliers, quorum erosion); build one with
	// DefaultHealthConfig or ParseHealthRules.
	HealthConfig = health.Config
	// HealthMonitor is the streaming detector engine: attach one to
	// SimConfig.Health or ServerConfig.Health (sweeps instead take a
	// *HealthConfig on SweepConfig.Health and build one fresh monitor
	// per cell) and every completed round is judged without perturbing
	// results — a run with a monitor attached is bit-identical to one
	// without, and detectors are pure functions of the round stream, so
	// two identical runs yield bit-identical diagnoses.
	HealthMonitor = health.Monitor
	// HealthDiagnosis is a monitor's full verdict — alerts in raise
	// order, suspected-adversary IDs, per-client scores ranked least
	// healthy first. Render with WriteText or serve it via /healthz.
	HealthDiagnosis = health.Diagnosis
	// HealthAlert is one raised finding (rule, severity, round, client).
	HealthAlert = health.Alert
)

// Counter names for MetricsSnapshot.Counters lookups (the full set is in
// internal/obs).
const (
	MetricRounds           = obs.CounterRounds
	MetricUplinkWireBytes  = obs.CounterUplinkWireBytes
	MetricUplinkDenseBytes = obs.CounterUplinkDenseBytes
)

// Straggler policies for asynchronous federations (ServerConfig.Straggler):
// requeue keeps deadline-missers in the federation, drop evicts them.
const (
	StragglerRequeue = fl.StragglerRequeue
	StragglerDrop    = fl.StragglerDrop
)

// Experiment scales.
const (
	ScaleSmoke = experiments.ScaleSmoke
	ScaleCI    = experiments.ScaleCI
	ScalePaper = experiments.ScalePaper
)

// ExperimentIDs lists the reproducible paper artifacts:
// fig1..fig8 and table1.
func ExperimentIDs() []string { return experiments.IDs() }

// RunExperiment reproduces one paper figure/table end to end.
func RunExperiment(ctx context.Context, id string, scale Scale, seed int64) (*Report, error) {
	return experiments.Run(ctx, id, scale, seed)
}

// SettingNames lists the paper's dataset/partition settings.
func SettingNames() []string {
	m := experiments.Settings()
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NewEnvironment builds the experiment world for a named setting.
func NewEnvironment(setting string, scale Scale, seed int64) (*Environment, error) {
	s, ok := experiments.Settings()[setting]
	if !ok {
		return nil, fmt.Errorf("calibre: unknown setting %q (have %v)", setting, SettingNames())
	}
	return experiments.BuildEnvironment(s, scale, seed)
}

// MethodNames lists every runnable method: the paper's baselines, the
// pFL-SSL family and all Calibre variants.
func MethodNames() []string { return baselines.MethodNames() }

// BuildMethod constructs a registered method for an environment.
func BuildMethod(env *Environment, name string) (*Method, error) {
	return experiments.BuildMethod(env, name)
}

// Run trains a registered method on the environment (training stage) and
// personalizes all participating and novel clients (personalization stage).
func Run(ctx context.Context, env *Environment, methodName string) (*MethodOutcome, error) {
	return experiments.RunMethod(ctx, env, methodName)
}

// RunCustom is Run for an externally assembled *Method (e.g. a Calibre
// ablation variant built with NewCalibreVariant).
func RunCustom(ctx context.Context, env *Environment, m *Method) (*MethodOutcome, error) {
	return experiments.RunBuiltMethod(ctx, env, m)
}

// OpenCheckpointStore opens (creating if needed) a durable checkpoint
// directory for crash-recoverable training; see RunResumable and
// ServerConfig.OnCheckpoint/ResumeFrom.
func OpenCheckpointStore(dir string) (*CheckpointStore, error) { return store.Open(dir) }

// RunResumable is Run with durability: round state is snapshotted into dir
// every `every` rounds (≤0 means every round), and a rerun after a crash
// resumes from the latest snapshot, bit-identical to a run that never
// stopped. Snapshots are fingerprint-bound to the (method, setting, seed,
// population) combination; inspect them with the calibre-ckpt CLI.
// Methods carrying cross-round client state a snapshot cannot capture
// (fedema, fedper/fedrep/fedbabu/lg-fedavg, scaffold, apfl, ditto, and
// the byol/mocov2 SSL flavors) are refused with fl.ErrStatefulResume —
// use Run for those.
func RunResumable(ctx context.Context, env *Environment, methodName, dir string, every int) (*MethodOutcome, error) {
	ckpt, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	return experiments.RunMethodResumable(ctx, env, methodName, ckpt, every)
}

// RunSweep executes a declarative scenario grid — every (method,
// setting, seed, knob) cell as one scheduled unit — and returns the
// per-cell outcomes. With cfg.Dir set the sweep is durable: an atomic
// manifest records each completed cell, a killed sweep resumes with
// cfg.Resume (skipping finished cells, byte-identical final report), and
// cfg.CheckpointEvery threads per-cell round checkpoints through the
// resume machinery. Results are bit-identical at any cfg.Workers count.
// The calibre-sweep CLI wraps this (plan/run/resume/report).
func RunSweep(ctx context.Context, grid *SweepGrid, cfg SweepConfig) (*SweepResult, error) {
	return sweep.Run(ctx, grid, cfg)
}

// LoadSweepGrid reads a declarative sweep grid from a JSON file.
func LoadSweepGrid(path string) (*SweepGrid, error) { return sweep.LoadGrid(path) }

// NewSweepReport aggregates a sweep result into its fairness-first
// report (WriteMarkdown, WriteCellsCSV, WriteMethodsCSV).
func NewSweepReport(res *SweepResult) *SweepReport { return sweep.NewReport(res) }

// NewCalibreVariant builds a Calibre method with explicit regularizer
// switches (the Table I ablation knobs) on any supported SSL flavor
// (simclr, byol, simsiam, mocov2, swav, smog).
func NewCalibreVariant(env *Environment, sslName string, useLn, useLp bool) (*Method, error) {
	return experiments.AblationVariant(env, sslName, useLn, useLp)
}

// Summarize computes the mean/variance/std summary of per-client
// accuracies.
func Summarize(accs []float64) Summary { return eval.Summarize(accs) }

// Improvement returns a's mean-accuracy margin over b in percentage points.
func Improvement(a, b Summary) float64 { return eval.Improvement(a, b) }

// VarianceReduction returns a's relative variance reduction vs b in
// percent (positive = fairer).
func VarianceReduction(a, b Summary) float64 { return eval.VarianceReduction(a, b) }

// SSLMethodNames lists the supported self-supervised flavors.
func SSLMethodNames() []string { return ssl.MethodNames() }

// NewMetricsRegistry builds an empty observability registry; attach it
// via SimConfig.Obs / ServerConfig.Obs / SweepConfig.Obs and serve it
// with ServeMetrics. All registry methods are nil-receiver-safe, so
// instrumented code never needs to check whether metrics are enabled.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// DefaultHealthConfig enables every streaming anomaly detector at its
// documented default thresholds (see internal/health).
func DefaultHealthConfig() HealthConfig { return health.DefaultConfig() }

// ParseHealthRules builds a HealthConfig from the textual rule spec the
// CLIs take ("default", "all", or a list like
// "non-finite,norm-z(3.5,2)"); Config.Rules round-trips the canonical
// form.
func ParseHealthRules(spec string) (HealthConfig, error) { return health.ParseRules(spec) }

// NewHealthMonitor builds a streaming health monitor; attach it via
// SimConfig.Health or ServerConfig.Health (for sweeps, set the config on
// SweepConfig.Health instead — one fresh monitor per cell), read the
// verdict with its Diagnosis method, or serve it alongside the metrics
// endpoints (calibre-server -health, calibre-sweep run -health). The
// calibre-doctor CLI reaches the same verdict live over /metrics or
// offline from a flight-recorder trace.
func NewHealthMonitor(cfg *HealthConfig) *HealthMonitor { return health.NewMonitor(cfg) }

// ServeMetrics binds addr (port 0 picks a free one) and serves the
// registry read-only over HTTP — /metrics as a JSON MetricsSnapshot,
// /metrics/prom as Prometheus text — exactly what the calibre-server and
// calibre-sweep `-metrics-addr` flags do, and what `calibre-sweep watch`
// polls. Tear down with the returned server's Shutdown.
func ServeMetrics(addr string, reg *MetricsRegistry) (*http.Server, net.Addr, error) {
	return obs.Serve(addr, reg)
}

// NewServer starts a TCP federation server (see cmd/calibre-server).
func NewServer(cfg ServerConfig) (*Server, error) { return flnet.NewServer(cfg) }

// RunClient joins a TCP federation as one client (see cmd/calibre-client).
func RunClient(ctx context.Context, cfg ClientConfig) error { return flnet.RunClient(ctx, cfg) }

// NewSyntheticDataset generates a labeled synthetic dataset from a spec
// (see CIFAR10Spec and friends) for library users who want raw data.
func NewSyntheticDataset(spec DataSpec, seed int64, perClass int) (*Dataset, error) {
	gen, err := data.NewGenerator(spec, seed)
	if err != nil {
		return nil, err
	}
	return gen.GenerateLabeled(rand.New(rand.NewSource(seed+1)), perClass), nil
}

// CIFAR10Spec returns the synthetic CIFAR-10 stand-in spec.
func CIFAR10Spec() DataSpec { return data.CIFAR10Spec() }

// CIFAR100Spec returns the synthetic CIFAR-100 stand-in spec.
func CIFAR100Spec() DataSpec { return data.CIFAR100Spec() }

// STL10Spec returns the synthetic STL-10 stand-in spec (pair it with an
// unlabeled pool at partition time, as the experiment harness does).
func STL10Spec() DataSpec { return data.STL10Spec() }
